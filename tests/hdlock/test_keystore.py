"""Tests for the fleet-scale packed key store (mmap, rotation, revocation)."""

import json
import os

import numpy as np
import pytest

from repro.errors import ConfigurationError, KeyFormatError
from repro.hdlock.keygen import generate_keys
from repro.hdlock.keystore import DATA_FILE, HEADER_FILE, KeyStore
from repro.memory.key import KeyBatch

N, L, P, D = 16, 2, 16, 512
DEVICES = 64


@pytest.fixture
def batch() -> KeyBatch:
    return generate_keys(DEVICES, N, L, P, D, rng=0)


@pytest.fixture
def store(tmp_path, batch) -> KeyStore:
    store = KeyStore.create(tmp_path / "ks", N, L, P, D)
    store.append(batch)
    return store


class TestRoundtrip:
    def test_append_assigns_contiguous_ids(self, store):
        assert len(store) == DEVICES

    def test_random_access_matches_batch(self, store, batch):
        for device in (0, 1, 31, DEVICES - 1):
            assert store.key(device) == batch.key(device)

    def test_mmap_reopen_roundtrip(self, tmp_path, store, batch):
        """Every key survives a close + reopen through the mmap path."""
        store.close()
        reopened = KeyStore.open(tmp_path / "ks")
        for device, key in enumerate(reopened):
            assert key == batch.key(device)

    def test_arrays_access(self, store, batch):
        idx, rot = store.arrays(5)
        np.testing.assert_array_equal(idx, batch.indices[5])
        np.testing.assert_array_equal(rot, batch.rotations[5])

    def test_append_key_single(self, store, batch):
        device = store.append_key(batch.key(3))
        assert device == DEVICES
        assert store.key(device) == batch.key(3)

    def test_incremental_append(self, tmp_path, batch):
        store = KeyStore.create(tmp_path / "inc", N, L, P, D)
        more = generate_keys(10, N, L, P, D, rng=1)
        assert store.append(batch) == range(0, DEVICES)
        assert store.append(more) == range(DEVICES, DEVICES + 10)
        assert store.key(DEVICES + 3) == more.key(3)


class TestAtRestFootprint:
    def test_stride_within_floor_ratio(self, store):
        """Packed records sit within 1.25x of the information floor."""
        assert store.stride_bytes * 8 <= store.storage_floor_bits() * 1.25

    def test_data_file_is_stride_times_devices(self, tmp_path, store):
        size = (tmp_path / "ks" / DATA_FILE).stat().st_size
        assert size == DEVICES * store.stride_bytes

    def test_key_material_not_world_readable(self, tmp_path, store):
        for name in (DATA_FILE, HEADER_FILE):
            mode = (tmp_path / "ks" / name).stat().st_mode & 0o777
            assert mode == 0o600, f"{name} has mode {oct(mode)}"


class TestRevocation:
    def test_revoked_key_refuses_to_load(self, store):
        store.revoke(9)
        with pytest.raises(KeyFormatError, match="revoked"):
            store.key(9)

    def test_revoked_key_loads_for_audit(self, store, batch):
        store.revoke(9)
        assert store.key(9, allow_revoked=True) == batch.key(9)

    def test_revocation_persists_across_reopen(self, tmp_path, store):
        store.revoke(9)
        store.revoke(11)
        reopened = KeyStore.open(tmp_path / "ks")
        assert reopened.is_revoked(9) and reopened.is_revoked(11)
        assert not reopened.is_revoked(10)

    def test_revoke_is_idempotent(self, store):
        store.revoke(4)
        store.revoke(4)
        assert sorted(store.revoked) == [4]

    def test_unknown_device_rejected(self, store):
        with pytest.raises(ConfigurationError):
            store.revoke(DEVICES)
        with pytest.raises(ConfigurationError):
            store.key(-1)


class TestRotation:
    def test_rotate_changes_only_target_device(self, store, batch):
        fresh = store.rotate(7, rng=123)
        assert fresh != batch.key(7)
        assert store.key(7) == fresh
        for other in (0, 6, 8, DEVICES - 1):
            assert store.key(other) == batch.key(other)

    def test_rotate_bumps_generation_and_persists(self, tmp_path, store):
        assert store.generation == 0
        store.rotate(7, rng=1)
        store.rotate(8, rng=2)
        reopened = KeyStore.open(tmp_path / "ks")
        assert reopened.generation == 2

    def test_rotate_lifts_revocation(self, store):
        store.revoke(7)
        store.rotate(7, rng=3)
        assert not store.is_revoked(7)
        store.key(7)  # loads again

    def test_rotated_key_shape_matches_store(self, store):
        fresh = store.rotate(2, rng=5)
        assert fresh.n_features == N and fresh.layers == L
        assert fresh.pool_size == P and fresh.dim == D


class TestFormatValidation:
    def test_open_missing_directory(self, tmp_path):
        with pytest.raises(ConfigurationError):
            KeyStore.open(tmp_path / "nowhere")

    def test_create_twice_rejected(self, tmp_path, store):
        with pytest.raises(ConfigurationError, match="already exists"):
            KeyStore.create(tmp_path / "ks", N, L, P, D)

    def test_truncated_data_detected(self, tmp_path, store):
        data = tmp_path / "ks" / DATA_FILE
        os.truncate(data, data.stat().st_size - 1)
        with pytest.raises(KeyFormatError, match="bytes"):
            KeyStore.open(tmp_path / "ks")

    def test_bad_magic_detected(self, tmp_path, store):
        header = tmp_path / "ks" / HEADER_FILE
        payload = json.loads(header.read_text())
        payload["magic"] = "not-a-keystore"
        header.write_text(json.dumps(payload))
        with pytest.raises(KeyFormatError, match="magic"):
            KeyStore.open(tmp_path / "ks")

    def test_unsupported_version_detected(self, tmp_path, store):
        header = tmp_path / "ks" / HEADER_FILE
        payload = json.loads(header.read_text())
        payload["version"] = 99
        header.write_text(json.dumps(payload))
        with pytest.raises(KeyFormatError, match="version"):
            KeyStore.open(tmp_path / "ks")

    def test_inconsistent_stride_detected(self, tmp_path, store):
        header = tmp_path / "ks" / HEADER_FILE
        payload = json.loads(header.read_text())
        payload["stride_bytes"] += 1
        header.write_text(json.dumps(payload))
        with pytest.raises(KeyFormatError, match="stride"):
            KeyStore.open(tmp_path / "ks")

    def test_garbled_header_detected(self, tmp_path, store):
        (tmp_path / "ks" / HEADER_FILE).write_text("{not json")
        with pytest.raises(KeyFormatError, match="malformed"):
            KeyStore.open(tmp_path / "ks")

    def test_revoked_out_of_range_detected(self, tmp_path, store):
        header = tmp_path / "ks" / HEADER_FILE
        payload = json.loads(header.read_text())
        payload["revoked"] = [DEVICES + 5]
        header.write_text(json.dumps(payload))
        with pytest.raises(KeyFormatError, match="unknown devices"):
            KeyStore.open(tmp_path / "ks")

    def test_wrong_shape_batch_rejected(self, store):
        wrong = generate_keys(2, N, L + 1, P, D, rng=4)
        with pytest.raises(KeyFormatError, match="does not match store"):
            store.append(wrong)

    def test_degenerate_shape_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            KeyStore.create(tmp_path / "bad", 0, L, P, D)
