"""Tests for the high-level HDLock API and the trade-off analysis."""

import numpy as np
import pytest

from repro.encoding.record import RecordEncoder
from repro.errors import ConfigurationError
from repro.hdlock.analysis import (
    recommend_layers,
    render_tradeoff_table,
    security_level_bits,
    tradeoff_table,
)
from repro.hdlock.lock import create_locked_encoder, lock_encoder, lock_model

N, M, D = 24, 6, 1024


class TestCreateLockedEncoder:
    def test_default_pool_is_n(self):
        system = create_locked_encoder(N, M, D, layers=2, rng=0)
        assert system.pool_size == N
        assert system.layers == 2
        assert system.encoder.n_features == N

    def test_custom_pool_size(self):
        system = create_locked_encoder(N, M, D, layers=1, pool_size=7, rng=1)
        assert system.base_pool.shape == (7, D)

    def test_key_is_in_secure_memory(self):
        system = create_locked_encoder(N, M, D, layers=2, rng=2)
        assert system.secure_memory.load("lock_key") == system.key

    def test_invalid_layers(self):
        with pytest.raises(ConfigurationError):
            create_locked_encoder(N, M, D, layers=0)

    def test_reproducible(self):
        a = create_locked_encoder(N, M, D, layers=2, rng=3)
        b = create_locked_encoder(N, M, D, layers=2, rng=3)
        assert a.key == b.key
        np.testing.assert_array_equal(a.base_pool, b.base_pool)


class TestLockEncoder:
    def test_reuses_level_memory(self):
        plain = RecordEncoder.random(N, M, D, rng=4)
        system = lock_encoder(plain, layers=2, rng=5)
        assert system.encoder.level_memory is plain.level_memory

    def test_feature_hvs_replaced(self):
        plain = RecordEncoder.random(N, M, D, rng=6)
        system = lock_encoder(plain, layers=2, rng=7)
        assert not np.array_equal(
            system.encoder.feature_matrix, plain.feature_matrix
        )

    def test_shapes_preserved(self):
        plain = RecordEncoder.random(N, M, D, rng=8)
        system = lock_encoder(plain, layers=3, rng=9)
        assert system.encoder.n_features == N
        assert system.encoder.levels == M
        assert system.encoder.dim == D


class TestLockModel:
    def test_retrains_under_lock(self, tiny_dataset):
        plain = RecordEncoder.random(
            tiny_dataset.n_features, tiny_dataset.levels, D, rng=10
        )
        system, training = lock_model(
            plain,
            tiny_dataset.train_x,
            tiny_dataset.train_y,
            n_classes=tiny_dataset.n_classes,
            layers=2,
            binary=True,
            retrain_epochs=1,
            rng=11,
        )
        accuracy = training.model.score(tiny_dataset.test_x, tiny_dataset.test_y)
        assert accuracy > 0.8  # no accuracy loss from locking (Fig. 8)
        assert training.model.encoder is system.encoder


class TestAnalysis:
    def test_security_bits_mnist(self):
        bits = security_level_bits(784, 10_000, 784, 2)
        assert bits == pytest.approx(55.4, abs=0.2)

    def test_recommend_layers(self):
        # paper MNIST: one layer gives 6.15e9, two give 4.81e16
        assert recommend_layers(1e12, 784, 10_000, 784) == 2
        assert recommend_layers(1e9, 784, 10_000, 784) == 1

    def test_recommend_layers_unreachable(self):
        with pytest.raises(ConfigurationError):
            recommend_layers(1e30, 1, 1, 1, max_layers=3)

    def test_recommend_layers_invalid_target(self):
        with pytest.raises(ConfigurationError):
            recommend_layers(0, 784, 10_000, 784)

    def test_tradeoff_rows(self):
        rows = tradeoff_table(784, 10_000, 784, layer_range=range(1, 4))
        assert [r.layers for r in rows] == [1, 2, 3]
        assert rows[0].relative_encoding_time == pytest.approx(1.0)
        assert rows[1].relative_encoding_time == pytest.approx(1.21, abs=0.01)
        assert rows[1].total_guesses == 784 * (10_000 * 784) ** 2
        # security strictly increases, latency strictly increases
        assert rows[2].total_guesses > rows[1].total_guesses > rows[0].total_guesses
        assert (
            rows[2].relative_encoding_time
            > rows[1].relative_encoding_time
            > rows[0].relative_encoding_time
        )

    def test_render_tradeoff_table(self):
        text = render_tradeoff_table(tradeoff_table(784, 10_000, 784))
        assert "4.82e+16" in text or "4.81e+16" in text
        assert "1.21x" in text
