"""Tests for deployment provisioning (bundle save/load, key separation)."""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError, KeyFormatError
from repro.hdlock.lock import create_locked_encoder
from repro.hdlock.provisioning import (
    KEY_FILE,
    MANIFEST_FILE,
    POOL_FILE,
    BundleManifest,
    load_key,
    load_public_bundle,
    restore_encoder,
    save_key,
    save_public_bundle,
)

N, M, D = 16, 5, 512


@pytest.fixture
def system():
    return create_locked_encoder(N, M, D, layers=2, rng=0)


class TestSaveLoadRoundtrip:
    def test_bundle_roundtrip(self, system, tmp_path):
        manifest = save_public_bundle(tmp_path, system.encoder)
        pool, values, loaded_manifest = load_public_bundle(tmp_path)
        np.testing.assert_array_equal(pool, system.base_pool)
        np.testing.assert_array_equal(
            values.matrix, system.encoder.level_memory.matrix
        )
        assert loaded_manifest == manifest

    def test_key_roundtrip(self, system, tmp_path):
        path = save_key(tmp_path, system.key)
        assert path.name == KEY_FILE
        assert load_key(path) == system.key

    def test_restore_encoder_is_equivalent(self, system, tmp_path):
        save_public_bundle(tmp_path, system.encoder)
        restored = restore_encoder(tmp_path, system.key, rng=1)
        sample = np.random.default_rng(2).integers(0, M, N)
        np.testing.assert_array_equal(
            restored.encode_nonbinary(sample),
            system.encoder.encode_nonbinary(sample),
        )

    def test_key_not_in_public_bundle(self, system, tmp_path):
        """The public bundle must never contain key material."""
        save_public_bundle(tmp_path, system.encoder)
        names = {p.name for p in tmp_path.iterdir()}
        assert KEY_FILE not in names

    def test_bundle_is_bit_packed(self, system, tmp_path):
        save_public_bundle(tmp_path, system.encoder)
        stored = np.load(tmp_path / POOL_FILE)
        assert stored.dtype == np.uint8
        assert stored.nbytes == N * D // 8


class TestIntegrity:
    def test_tampered_pool_detected(self, system, tmp_path):
        save_public_bundle(tmp_path, system.encoder)
        packed = np.load(tmp_path / POOL_FILE)
        packed[0, 0] ^= 0xFF
        np.save(tmp_path / POOL_FILE, packed)
        with pytest.raises(ConfigurationError, match="integrity"):
            load_public_bundle(tmp_path)

    def test_tampered_values_detected(self, system, tmp_path):
        save_public_bundle(tmp_path, system.encoder)
        packed = np.load(tmp_path / "value_memory.npy")
        packed[1, 3] ^= 0x01
        np.save(tmp_path / "value_memory.npy", packed)
        with pytest.raises(ConfigurationError, match="integrity"):
            load_public_bundle(tmp_path)

    def test_malformed_manifest(self, system, tmp_path):
        save_public_bundle(tmp_path, system.encoder)
        (tmp_path / MANIFEST_FILE).write_text("{\"dim\": 512}")
        with pytest.raises(ConfigurationError):
            load_public_bundle(tmp_path)

    def test_manifest_json_roundtrip(self, system, tmp_path):
        manifest = save_public_bundle(tmp_path, system.encoder)
        parsed = BundleManifest.from_json(manifest.to_json())
        assert parsed == manifest

    def test_wrong_key_shape_rejected(self, system, tmp_path):
        save_public_bundle(tmp_path, system.encoder)
        from repro.hdlock.keygen import generate_key

        wrong_dim_key = generate_key(N, 2, N, D * 2, rng=3)
        with pytest.raises(KeyFormatError):
            restore_encoder(tmp_path, wrong_dim_key)

    def test_manifest_is_readable_json(self, system, tmp_path):
        save_public_bundle(tmp_path, system.encoder)
        payload = json.loads((tmp_path / MANIFEST_FILE).read_text())
        assert payload["dim"] == D
        assert payload["pool_size"] == N
