"""Tests for deployment provisioning (bundle save/load, key separation)."""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError, KeyFormatError
from repro.hdlock.keygen import generate_keys
from repro.hdlock.lock import create_locked_encoder
from repro.hdlock.provisioning import (
    KEY_FILE,
    KEYSTORE_DIR,
    MANIFEST_FILE,
    POOL_FILE,
    VALUES_FILE,
    BundleManifest,
    load_fleet_key,
    load_key,
    load_public_bundle,
    open_fleet_store,
    restore_device_encoder,
    restore_encoder,
    save_fleet_keys,
    save_key,
    save_public_bundle,
)

N, M, D = 16, 5, 512


@pytest.fixture
def system():
    return create_locked_encoder(N, M, D, layers=2, rng=0)


class TestSaveLoadRoundtrip:
    def test_bundle_roundtrip(self, system, tmp_path):
        manifest = save_public_bundle(tmp_path, system.encoder)
        pool, values, loaded_manifest = load_public_bundle(tmp_path)
        np.testing.assert_array_equal(pool, system.base_pool)
        np.testing.assert_array_equal(
            values.matrix, system.encoder.level_memory.matrix
        )
        assert loaded_manifest == manifest

    def test_key_roundtrip(self, system, tmp_path):
        path = save_key(tmp_path, system.key)
        assert path.name == KEY_FILE
        assert load_key(path) == system.key

    def test_restore_encoder_is_equivalent(self, system, tmp_path):
        save_public_bundle(tmp_path, system.encoder)
        restored = restore_encoder(tmp_path, system.key, rng=1)
        sample = np.random.default_rng(2).integers(0, M, N)
        np.testing.assert_array_equal(
            restored.encode_nonbinary(sample),
            system.encoder.encode_nonbinary(sample),
        )

    def test_key_not_in_public_bundle(self, system, tmp_path):
        """The public bundle must never contain key material."""
        save_public_bundle(tmp_path, system.encoder)
        names = {p.name for p in tmp_path.iterdir()}
        assert KEY_FILE not in names

    def test_bundle_is_bit_packed(self, system, tmp_path):
        save_public_bundle(tmp_path, system.encoder)
        stored = np.load(tmp_path / POOL_FILE)
        assert stored.dtype == np.uint8
        assert stored.nbytes == N * D // 8


class TestIntegrity:
    def test_tampered_pool_detected(self, system, tmp_path):
        save_public_bundle(tmp_path, system.encoder)
        packed = np.load(tmp_path / POOL_FILE)
        packed[0, 0] ^= 0xFF
        np.save(tmp_path / POOL_FILE, packed)
        with pytest.raises(ConfigurationError, match="integrity"):
            load_public_bundle(tmp_path)

    def test_tampered_values_detected(self, system, tmp_path):
        save_public_bundle(tmp_path, system.encoder)
        packed = np.load(tmp_path / "value_memory.npy")
        packed[1, 3] ^= 0x01
        np.save(tmp_path / "value_memory.npy", packed)
        with pytest.raises(ConfigurationError, match="integrity"):
            load_public_bundle(tmp_path)

    def test_malformed_manifest(self, system, tmp_path):
        save_public_bundle(tmp_path, system.encoder)
        (tmp_path / MANIFEST_FILE).write_text("{\"dim\": 512}")
        with pytest.raises(ConfigurationError):
            load_public_bundle(tmp_path)

    def test_manifest_json_roundtrip(self, system, tmp_path):
        manifest = save_public_bundle(tmp_path, system.encoder)
        parsed = BundleManifest.from_json(manifest.to_json())
        assert parsed == manifest

    def test_wrong_key_shape_rejected(self, system, tmp_path):
        save_public_bundle(tmp_path, system.encoder)
        from repro.hdlock.keygen import generate_key

        wrong_dim_key = generate_key(N, 2, N, D * 2, rng=3)
        with pytest.raises(KeyFormatError):
            restore_encoder(tmp_path, wrong_dim_key)

    def test_manifest_is_readable_json(self, system, tmp_path):
        save_public_bundle(tmp_path, system.encoder)
        payload = json.loads((tmp_path / MANIFEST_FILE).read_text())
        assert payload["dim"] == D
        assert payload["pool_size"] == N


class TestKeyFilePermissions:
    def test_saved_key_is_owner_only(self, system, tmp_path):
        path = save_key(tmp_path, system.key)
        assert path.stat().st_mode & 0o777 == 0o600

    def test_resave_repins_permissions(self, system, tmp_path):
        """A pre-existing world-readable key file must be re-pinned:
        os.open's mode argument only applies to newly created files."""
        path = save_key(tmp_path, system.key)
        path.chmod(0o644)
        save_key(tmp_path, system.key)
        assert path.stat().st_mode & 0o777 == 0o600


class TestErrorContract:
    """Loaders raise repro errors, never raw OSError/ValueError."""

    def test_missing_bundle_directory(self, tmp_path):
        with pytest.raises(ConfigurationError, match="unreadable"):
            load_public_bundle(tmp_path / "nowhere")

    def test_missing_pool_file(self, system, tmp_path):
        save_public_bundle(tmp_path, system.encoder)
        (tmp_path / POOL_FILE).unlink()
        with pytest.raises(ConfigurationError, match="unreadable"):
            load_public_bundle(tmp_path)

    def test_truncated_pool_file(self, system, tmp_path):
        save_public_bundle(tmp_path, system.encoder)
        payload = (tmp_path / POOL_FILE).read_bytes()
        (tmp_path / POOL_FILE).write_bytes(payload[: len(payload) // 2])
        with pytest.raises(ConfigurationError):
            load_public_bundle(tmp_path)

    def test_missing_key_file(self, tmp_path):
        with pytest.raises(KeyFormatError, match="unreadable"):
            load_key(tmp_path / "lock_key.json")

    def test_pool_wrong_dtype_rejected(self, system, tmp_path):
        save_public_bundle(tmp_path, system.encoder)
        np.save(tmp_path / POOL_FILE, np.zeros((N, D), dtype=np.int64))
        with pytest.raises(ConfigurationError, match="packed"):
            load_public_bundle(tmp_path)


class TestManifestTamperMatrix:
    """Flip each manifest field: the cross-check (or digest) must fire
    with the exact declared error type before any unpacking happens."""

    def _tamper(self, tmp_path, field, value):
        manifest_path = tmp_path / MANIFEST_FILE
        payload = json.loads(manifest_path.read_text())
        payload[field] = value
        manifest_path.write_text(json.dumps(payload))

    @pytest.mark.parametrize(
        "field, value, message",
        [
            # dim 512 -> 513 changes the expected packed width (64 -> 65)
            ("dim", D + 1, "inconsistent"),
            ("pool_size", N + 1, "inconsistent"),
            ("levels", M + 1, "inconsistent"),
            ("pool_sha256", "0" * 64, "integrity"),
            ("values_sha256", "0" * 64, "integrity"),
        ],
    )
    def test_each_field_tamper_detected(
        self, system, tmp_path, field, value, message
    ):
        save_public_bundle(tmp_path, system.encoder)
        self._tamper(tmp_path, field, value)
        with pytest.raises(ConfigurationError, match=message):
            load_public_bundle(tmp_path)

    @pytest.mark.parametrize("field", ["dim", "pool_size", "levels"])
    def test_degenerate_shape_rejected(self, system, tmp_path, field):
        save_public_bundle(tmp_path, system.encoder)
        self._tamper(tmp_path, field, 0)
        with pytest.raises(ConfigurationError, match="degenerate"):
            load_public_bundle(tmp_path)

    def test_values_bit_flip_detected(self, system, tmp_path):
        save_public_bundle(tmp_path, system.encoder)
        packed = np.load(tmp_path / VALUES_FILE)
        packed[0, 0] ^= 0x80  # single bit
        np.save(tmp_path / VALUES_FILE, packed)
        with pytest.raises(ConfigurationError, match="integrity"):
            load_public_bundle(tmp_path)


class TestFleetProvisioning:
    DEVICES = 12

    @pytest.fixture
    def batch(self, system):
        return generate_keys(
            self.DEVICES, N, system.key.layers, N, D, rng=1
        )

    def test_fleet_roundtrip(self, tmp_path, batch):
        save_fleet_keys(tmp_path, batch)
        for device in (0, 5, self.DEVICES - 1):
            assert load_fleet_key(tmp_path, device) == batch.key(device)

    def test_store_lives_in_subdirectory(self, tmp_path, batch):
        save_fleet_keys(tmp_path, batch)
        assert (tmp_path / KEYSTORE_DIR).is_dir()

    def test_second_save_appends(self, tmp_path, batch):
        save_fleet_keys(tmp_path, batch)
        store = save_fleet_keys(tmp_path, batch)
        assert len(store) == 2 * self.DEVICES
        assert load_fleet_key(tmp_path, self.DEVICES + 2) == batch.key(2)

    def test_revoked_device_refused(self, tmp_path, batch):
        store = save_fleet_keys(tmp_path, batch)
        store.revoke(3)
        with pytest.raises(KeyFormatError, match="revoked"):
            load_fleet_key(tmp_path, 3)

    def test_restore_device_encoder(self, system, tmp_path, batch):
        save_public_bundle(tmp_path, system.encoder)
        save_fleet_keys(tmp_path, batch)
        encoder = restore_device_encoder(tmp_path, 4, rng=2)
        sample = np.random.default_rng(3).integers(0, M, N)
        np.testing.assert_array_equal(
            encoder.encode_nonbinary(sample),
            restore_encoder(tmp_path, batch.key(4), rng=2).encode_nonbinary(
                sample
            ),
        )

    def test_open_fleet_store_missing(self, tmp_path):
        with pytest.raises(ConfigurationError):
            open_fleet_store(tmp_path)
