"""Tests for the carry-save bit-sliced multiply-accumulate kernel."""

import numpy as np
import pytest

from repro.hv.bitslice import CarrySaveAccumulator, bitsliced_accumulate
from repro.hv.packing import PACKED_WORD_DTYPE, pack_words
from repro.hv.random import random_pool


def _einsum_reference(lev, fea, samples):
    out = np.empty((samples.shape[0], lev.shape[1]), dtype=np.int64)
    for b in range(samples.shape[0]):
        out[b] = np.einsum(
            "nd,nd->d",
            lev[samples[b]].astype(np.int32),
            fea.astype(np.int32),
            dtype=np.int64,
        )
    return out


def _accumulate(lev, fea, samples):
    return bitsliced_accumulate(
        pack_words(lev), np.bitwise_not(pack_words(fea)), samples, lev.shape[1]
    )


class TestCarrySaveAccumulator:
    @pytest.mark.parametrize("n_planes", [0, 1, 2, 3, 7, 64, 100])
    def test_counts_match_dense_sum(self, n_planes):
        # Random bit-planes over 2 rows x 130 bits (3 words, pad bits).
        gen = np.random.default_rng(n_planes)
        dim, rows = 130, 2
        dense = gen.integers(0, 2, size=(n_planes, rows, dim), dtype=np.uint8)
        acc = CarrySaveAccumulator()
        for k in range(n_planes):
            acc.add(pack_words(2 * dense[k].astype(np.int16) - 1))
        assert acc.planes_added == n_planes
        np.testing.assert_array_equal(
            acc.counts(rows, dim), dense.sum(axis=0, dtype=np.int32)
        )

    def test_bucket_occupancy_stays_bounded(self):
        acc = CarrySaveAccumulator()
        plane = pack_words(np.ones((4, 65), dtype=np.int8))
        for _ in range(200):
            acc.add(plane.copy())
            assert all(len(bucket) <= 2 for bucket in acc._buckets)


class TestBitslicedAccumulate:
    @pytest.mark.parametrize("dim", [64, 100, 251, 1027])
    def test_matches_einsum_reference(self, dim):
        lev = random_pool(9, dim, rng=dim)
        fea = random_pool(13, dim, rng=dim + 1)
        samples = np.random.default_rng(dim + 2).integers(0, 9, (17, 13))
        np.testing.assert_array_equal(
            _accumulate(lev, fea, samples), _einsum_reference(lev, fea, samples)
        )

    def test_empty_batch(self):
        lev, fea = random_pool(4, 96, rng=0), random_pool(5, 96, rng=1)
        out = _accumulate(lev, fea, np.zeros((0, 5), dtype=np.int64))
        assert out.shape == (0, 96)
        assert out.dtype == np.int64

    def test_single_feature(self):
        # N = 1: the accumulation is just the selected level row times
        # the lone feature row.
        lev, fea = random_pool(3, 77, rng=2), random_pool(1, 77, rng=3)
        samples = np.array([[0], [2], [1]])
        want = lev[samples[:, 0]].astype(np.int64) * fea[0].astype(np.int64)
        np.testing.assert_array_equal(_accumulate(lev, fea, samples), want)

    def test_rejects_unpacked_level_matrix(self):
        lev, fea = random_pool(3, 64, rng=4), random_pool(4, 64, rng=5)
        with pytest.raises(TypeError):
            bitsliced_accumulate(
                lev, np.bitwise_not(pack_words(fea)), np.zeros((1, 4), int), 64
            )

    def test_output_dtype_is_uint64_bit_planes_in(self):
        lev, fea = random_pool(3, 100, rng=6), random_pool(4, 100, rng=7)
        packed = pack_words(lev)
        assert packed.dtype == PACKED_WORD_DTYPE
        out = _accumulate(lev, fea, np.zeros((2, 4), dtype=np.int64))
        assert out.dtype == np.int64
