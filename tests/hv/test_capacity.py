"""Tests for bundling-capacity analysis."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.hv.capacity import (
    capacity,
    detection_margin,
    empirical_capacity_curve,
    expected_member_distance,
    majority_advantage,
)


class TestMajorityAdvantage:
    def test_exact_small_values(self):
        # hand-computed: k=1 trivially matches; k=2 and k=3 give 0.75
        assert majority_advantage(1) == 0.5
        assert majority_advantage(2) == pytest.approx(0.25)
        assert majority_advantage(3) == pytest.approx(0.25)

    def test_monotone_decreasing(self):
        values = [majority_advantage(k) for k in range(2, 100)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_asymptotic_rate(self):
        for k in (1001, 10_001):
            assert majority_advantage(k) == pytest.approx(
                1 / math.sqrt(2 * math.pi * k), rel=0.05
            )

    def test_large_k_fast_and_finite(self):
        assert 0 < majority_advantage(1_000_001) < 1e-3

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            majority_advantage(0)


class TestExpectedMemberDistance:
    def test_complements_advantage(self):
        assert expected_member_distance(5) == pytest.approx(
            0.5 - majority_advantage(5)
        )

    def test_approaches_half(self):
        assert expected_member_distance(100_000) == pytest.approx(0.5, abs=0.01)


class TestCapacity:
    def test_scales_linearly_with_dim(self):
        c1 = capacity(2048)
        c2 = capacity(8192)
        assert c2 / c1 == pytest.approx(4.0, rel=0.15)

    def test_matches_closed_form(self):
        dim, sigmas = 10_000, 4.0
        expected = 2 * dim / (math.pi * sigmas**2)
        assert capacity(dim, sigmas) == pytest.approx(expected, rel=0.1)

    def test_margin_positive_at_capacity(self):
        dim = 4096
        k = capacity(dim)
        assert detection_margin(k, dim) > 0

    def test_stricter_sigmas_reduce_capacity(self):
        assert capacity(4096, sigmas=6.0) < capacity(4096, sigmas=3.0)

    def test_invalid_dim(self):
        with pytest.raises(ConfigurationError):
            capacity(0)


class TestEmpiricalCurve:
    def test_matches_prediction(self):
        points = empirical_capacity_curve([3, 9, 33, 101], dim=8192, rng=0)
        for point in points:
            assert point.member_distance == pytest.approx(
                point.predicted_member_distance, abs=0.03
            )
            assert point.non_member_distance == pytest.approx(0.5, abs=0.05)

    def test_members_closer_than_non_members_within_capacity(self):
        dim = 4096
        k = capacity(dim) // 2
        (point,) = empirical_capacity_curve([k], dim=dim, rng=1)
        assert point.member_distance < point.non_member_distance - 0.01

    def test_encoder_regime_has_signal(self):
        """N=784 bound pairs bundled at D>=2048: members detectable —
        this is why the attack's crafted queries carry signal."""
        (point,) = empirical_capacity_curve([785], dim=2048, rng=2)
        assert point.member_distance < 0.49
