"""Tests for bundling-capacity analysis."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.hv.capacity import (
    capacity,
    detection_margin,
    empirical_capacity_curve,
    expected_member_distance,
    fleet_collision_log2_probability,
    fleet_key_report,
    key_entropy_bits,
    majority_advantage,
    subkey_space_log2,
)


class TestMajorityAdvantage:
    def test_exact_small_values(self):
        # hand-computed: k=1 trivially matches; k=2 and k=3 give 0.75
        assert majority_advantage(1) == 0.5
        assert majority_advantage(2) == pytest.approx(0.25)
        assert majority_advantage(3) == pytest.approx(0.25)

    def test_monotone_decreasing(self):
        values = [majority_advantage(k) for k in range(2, 100)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:], strict=False))

    def test_asymptotic_rate(self):
        for k in (1001, 10_001):
            assert majority_advantage(k) == pytest.approx(
                1 / math.sqrt(2 * math.pi * k), rel=0.05
            )

    def test_large_k_fast_and_finite(self):
        assert 0 < majority_advantage(1_000_001) < 1e-3

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            majority_advantage(0)


class TestExpectedMemberDistance:
    def test_complements_advantage(self):
        assert expected_member_distance(5) == pytest.approx(
            0.5 - majority_advantage(5)
        )

    def test_approaches_half(self):
        assert expected_member_distance(100_000) == pytest.approx(0.5, abs=0.01)


class TestCapacity:
    def test_scales_linearly_with_dim(self):
        c1 = capacity(2048)
        c2 = capacity(8192)
        assert c2 / c1 == pytest.approx(4.0, rel=0.15)

    def test_matches_closed_form(self):
        dim, sigmas = 10_000, 4.0
        expected = 2 * dim / (math.pi * sigmas**2)
        assert capacity(dim, sigmas) == pytest.approx(expected, rel=0.1)

    def test_margin_positive_at_capacity(self):
        dim = 4096
        k = capacity(dim)
        assert detection_margin(k, dim) > 0

    def test_stricter_sigmas_reduce_capacity(self):
        assert capacity(4096, sigmas=6.0) < capacity(4096, sigmas=3.0)

    def test_invalid_dim(self):
        with pytest.raises(ConfigurationError):
            capacity(0)


class TestEmpiricalCurve:
    def test_matches_prediction(self):
        points = empirical_capacity_curve([3, 9, 33, 101], dim=8192, rng=0)
        for point in points:
            assert point.member_distance == pytest.approx(
                point.predicted_member_distance, abs=0.03
            )
            assert point.non_member_distance == pytest.approx(0.5, abs=0.05)

    def test_members_closer_than_non_members_within_capacity(self):
        dim = 4096
        k = capacity(dim) // 2
        (point,) = empirical_capacity_curve([k], dim=dim, rng=1)
        assert point.member_distance < point.non_member_distance - 0.01

    def test_encoder_regime_has_signal(self):
        """N=784 bound pairs bundled at D>=2048: members detectable —
        this is why the attack's crafted queries carry signal."""
        (point,) = empirical_capacity_curve([785], dim=2048, rng=2)
        assert point.member_distance < 0.49


class TestFleetKeyReport:
    def test_key_entropy_exact_tiny_shape(self):
        # S = C(2*2, 1) = 4 subkeys, N=2 distinct: log2(4) + log2(3)
        expected = math.log2(4) + math.log2(3)
        assert key_entropy_bits(2, 1, 2, 2) == pytest.approx(expected)

    def test_key_entropy_large_shape_near_log_form(self):
        entropy = key_entropy_bits(784, 2, 784, 2048)
        per_feature = subkey_space_log2(784, 2048, 2)
        # distinctness correction is negligible when S >> N
        assert entropy == pytest.approx(784 * per_feature, rel=1e-9)
        # MNIST-shaped keys carry tens of kilobits of entropy
        assert entropy > 30_000

    def test_key_entropy_log_form_when_space_overflows(self):
        # S = C(2**20 * 2**16, 4) far exceeds 2**53: log-form kicks in
        entropy = key_entropy_bits(16, 4, 1 << 20, 1 << 16)
        per_feature = subkey_space_log2(1 << 20, 1 << 16, 4)
        assert entropy == pytest.approx(16 * per_feature)

    def test_subkey_space_matches_comb(self):
        assert subkey_space_log2(4, 4, 2) == pytest.approx(
            math.log2(math.comb(16, 2))
        )

    def test_infeasible_shapes_refused(self):
        with pytest.raises(ConfigurationError):
            key_entropy_bits(20, 3, 2, 2)  # N > C(P*D, L)
        with pytest.raises(ConfigurationError):
            subkey_space_log2(2, 2, 5)  # L > P*D

    def test_collision_single_device_impossible(self):
        assert fleet_collision_log2_probability(1, 8, 2, 8, 64) == -math.inf

    def test_collision_grows_with_fleet_size(self):
        small = fleet_collision_log2_probability(100, 8, 2, 8, 64)
        large = fleet_collision_log2_probability(10_000, 8, 2, 8, 64)
        assert large > small

    def test_collision_probability_is_capped_at_one(self):
        # absurdly tiny key space, huge fleet: bound must clamp to 0.0
        assert fleet_collision_log2_probability(1_000, 1, 1, 2, 2) == 0.0

    def test_report_fields_consistent(self):
        report = fleet_key_report(100_000, 784, 2, 784, 2048)
        assert report.n_devices == 100_000
        assert report.key_entropy_bits > 30_000
        assert report.collision_probability == 0.0  # underflows a float
        assert report.collision_log2_probability < -30_000
        assert report.expected_guesses_log2 == pytest.approx(
            report.key_entropy_bits - 1.0
        )
        # a 100k-device fleet is ~17 bits easier to hit blind than one
        assert report.fleet_guess_log2_probability == pytest.approx(
            math.log2(100_000) - report.key_entropy_bits
        )

    def test_report_roundtrips_to_dict(self):
        report = fleet_key_report(10, 8, 2, 8, 64)
        payload = report.to_dict()
        assert payload["n_devices"] == 10
        assert payload["key_entropy_bits"] == report.key_entropy_bits
        assert set(payload) == {
            "n_devices",
            "n_features",
            "layers",
            "pool_size",
            "dim",
            "key_entropy_bits",
            "collision_log2_probability",
            "collision_probability",
            "expected_guesses_log2",
            "fleet_guess_log2_probability",
        }
