"""Tests for level (value) hypervector construction — Eq. 1b."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.hv.level import expected_level_distance, level_hvs, level_profile
from repro.hv.similarity import hamming

DIM = 2048


class TestLevelHVs:
    def test_shape(self):
        levels = level_hvs(8, DIM, rng=0)
        assert levels.shape == (8, DIM)
        assert set(np.unique(levels)) == {-1, 1}

    def test_extremes_near_orthogonal(self):
        levels = level_hvs(16, DIM, rng=1)
        # flips accumulate to exactly floor(D/2) positions
        assert hamming(levels[0], levels[-1]) == pytest.approx(0.5, abs=0.01)

    def test_linear_profile(self):
        m = 9
        levels = level_hvs(m, DIM, rng=2)
        profile = level_profile(levels)
        ideal = 0.5 * np.arange(m) / (m - 1)
        np.testing.assert_allclose(profile, ideal, atol=0.01)

    def test_pairwise_follows_eq_1b(self):
        m = 6
        levels = level_hvs(m, DIM, rng=3)
        for v1 in range(m):
            for v2 in range(m):
                expected = expected_level_distance(v1, v2, m)
                assert float(hamming(levels[v1], levels[v2])) == pytest.approx(
                    expected, abs=0.02
                )

    def test_monotonic_from_level_zero(self):
        levels = level_hvs(12, DIM, rng=4)
        profile = level_profile(levels)
        assert (np.diff(profile) >= 0).all()

    def test_two_levels_minimal(self):
        levels = level_hvs(2, DIM, rng=5)
        assert float(hamming(levels[0], levels[1])) == pytest.approx(0.5, abs=0.01)

    def test_single_level_rejected(self):
        with pytest.raises(ConfigurationError):
            level_hvs(1, DIM)

    def test_dim_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            level_hvs(10, 8)

    def test_reproducible(self):
        np.testing.assert_array_equal(
            level_hvs(4, 256, rng=9), level_hvs(4, 256, rng=9)
        )

    @given(st.integers(min_value=2, max_value=12))
    @settings(max_examples=10, deadline=None)
    def test_any_level_count_spans_half(self, m):
        levels = level_hvs(m, 1024, rng=0)
        d = float(hamming(levels[0], levels[-1]))
        assert abs(d - 0.5) <= 1 / 64  # rounding of D/2 across batches


class TestExpectedLevelDistance:
    def test_endpoints(self):
        assert expected_level_distance(0, 9, 10) == 0.5
        assert expected_level_distance(3, 3, 10) == 0.0

    def test_symmetry(self):
        assert expected_level_distance(2, 7, 16) == expected_level_distance(7, 2, 16)

    def test_invalid_levels(self):
        with pytest.raises(ConfigurationError):
            expected_level_distance(0, 1, 1)
