"""Unit and property tests for the MAP operators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DimensionMismatchError, NotBipolarError
from repro.hv import ops
from repro.hv.random import random_hv, random_pool

DIM = 256


def hv_strategy(dim: int = 64):
    """Hypothesis strategy generating bipolar hypervectors."""
    return st.lists(
        st.sampled_from([-1, 1]), min_size=dim, max_size=dim
    ).map(lambda xs: np.array(xs, dtype=np.int8))


class TestAsBipolar:
    def test_accepts_valid(self):
        hv = random_hv(DIM, rng=0)
        out = ops.as_bipolar(hv)
        assert out.dtype == ops.BIPOLAR_DTYPE
        np.testing.assert_array_equal(out, hv)

    def test_rejects_zero(self):
        bad = np.array([1, 0, -1])
        with pytest.raises(NotBipolarError):
            ops.as_bipolar(bad)

    def test_rejects_out_of_range(self):
        with pytest.raises(NotBipolarError):
            ops.as_bipolar(np.array([2, -1, 1]))


class TestCheckSameDim:
    def test_matching(self):
        assert ops.check_same_dim(np.ones(5), np.ones((3, 5))) == 5

    def test_mismatched(self):
        with pytest.raises(DimensionMismatchError):
            ops.check_same_dim(np.ones(5), np.ones(6))


class TestBind:
    def test_self_inverse(self, rng):
        a = random_hv(DIM, rng)
        b = random_hv(DIM, rng)
        np.testing.assert_array_equal(ops.bind(ops.bind(a, b), b), a)

    def test_commutative(self, rng):
        a, b = random_pool(2, DIM, rng)
        np.testing.assert_array_equal(ops.bind(a, b), ops.bind(b, a))

    def test_identity_is_ones(self, rng):
        a = random_hv(DIM, rng)
        np.testing.assert_array_equal(ops.bind(a, np.ones(DIM, dtype=np.int8)), a)

    def test_broadcasts_pool_against_vector(self, rng):
        pool = random_pool(7, DIM, rng)
        v = random_hv(DIM, rng)
        out = ops.bind(pool, v)
        assert out.shape == (7, DIM)
        np.testing.assert_array_equal(out[3], ops.bind(pool[3], v))

    def test_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            ops.bind(np.ones(4), np.ones(5))

    @given(hv_strategy(), hv_strategy())
    @settings(max_examples=25, deadline=None)
    def test_result_stays_bipolar(self, a, b):
        out = ops.bind(a, b)
        assert set(np.unique(out)).issubset({-1, 1})


class TestBindMany:
    def test_single_copies(self, rng):
        a = random_hv(DIM, rng)
        out = ops.bind_many(a)
        np.testing.assert_array_equal(out, a)
        out[0] = -out[0]
        assert out[0] != a[0]  # must be a copy

    def test_two_equals_bind(self, rng):
        a, b = random_pool(2, DIM, rng)
        np.testing.assert_array_equal(ops.bind_many([a, b]), ops.bind(a, b))

    def test_order_invariant(self, rng):
        hvs = random_pool(4, DIM, rng)
        np.testing.assert_array_equal(
            ops.bind_many(hvs), ops.bind_many(hvs[::-1])
        )

    def test_repeated_pair_cancels(self, rng):
        a = random_hv(DIM, rng)
        out = ops.bind_many([a, a])
        np.testing.assert_array_equal(out, np.ones(DIM, dtype=np.int8))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ops.bind_many(np.empty((0, DIM), dtype=np.int8))


class TestBundle:
    def test_counts_votes(self):
        hvs = np.array([[1, -1, 1], [1, 1, -1], [1, -1, -1]], dtype=np.int8)
        np.testing.assert_array_equal(ops.bundle(hvs), [3, -1, -1])

    def test_single_vector_promotes_dtype(self, rng):
        a = random_hv(DIM, rng)
        out = ops.bundle(a)
        assert out.dtype == ops.ACCUM_DTYPE

    def test_no_overflow_at_scale(self):
        hvs = np.ones((300, 8), dtype=np.int8)
        np.testing.assert_array_equal(ops.bundle(hvs), np.full(8, 300))


class TestPermute:
    def test_matches_paper_definition(self):
        hv = np.array([10, 20, 30, 40, 50])
        # rho_k(HV) = {HV[k : D-1], HV[0 : k-1]}
        np.testing.assert_array_equal(ops.permute(hv, 2), [30, 40, 50, 10, 20])

    def test_zero_is_identity(self, rng):
        a = random_hv(DIM, rng)
        np.testing.assert_array_equal(ops.permute(a, 0), a)

    def test_full_rotation_is_identity(self, rng):
        a = random_hv(DIM, rng)
        np.testing.assert_array_equal(ops.permute(a, DIM), a)

    def test_negative_rotates_right(self):
        hv = np.array([1, 2, 3, 4])
        np.testing.assert_array_equal(ops.permute(hv, -1), [4, 1, 2, 3])

    def test_composition_adds(self, rng):
        a = random_hv(DIM, rng)
        np.testing.assert_array_equal(
            ops.permute(ops.permute(a, 3), 5), ops.permute(a, 8)
        )

    def test_inverse(self, rng):
        a = random_hv(DIM, rng)
        np.testing.assert_array_equal(
            ops.permute_inverse(ops.permute(a, 17), 17), a
        )

    def test_matrix_rotates_last_axis(self, rng):
        pool = random_pool(3, DIM, rng)
        out = ops.permute(pool, 5)
        for i in range(3):
            np.testing.assert_array_equal(out[i], ops.permute(pool[i], 5))

    @given(st.integers(min_value=-200, max_value=200))
    @settings(max_examples=30, deadline=None)
    def test_any_k_preserves_multiset(self, k):
        hv = np.arange(32)
        out = ops.permute(hv, k)
        assert sorted(out) == sorted(hv)


class TestPermuteRows:
    def test_per_row_shifts(self, rng):
        pool = random_pool(4, DIM, rng)
        shifts = [0, 1, 7, DIM - 1]
        out = ops.permute_rows(pool, shifts)
        for i, k in enumerate(shifts):
            np.testing.assert_array_equal(out[i], ops.permute(pool[i], k))

    def test_shift_count_mismatch(self, rng):
        pool = random_pool(4, DIM, rng)
        with pytest.raises(DimensionMismatchError):
            ops.permute_rows(pool, [1, 2])

    def test_requires_matrix(self, rng):
        with pytest.raises(ValueError):
            ops.permute_rows(random_hv(DIM, rng), [1])

    def test_shifts_wrap_modulo(self, rng):
        pool = random_pool(2, DIM, rng)
        out = ops.permute_rows(pool, [DIM + 3, 2 * DIM])
        np.testing.assert_array_equal(out[0], ops.permute(pool[0], 3))
        np.testing.assert_array_equal(out[1], pool[1])


class TestSign:
    def test_positive_negative(self):
        out = ops.sign(np.array([5, -3, 1, -1]))
        np.testing.assert_array_equal(out, [1, -1, 1, -1])

    def test_zero_ties_are_random_but_bipolar(self):
        out = ops.sign(np.zeros(1000), rng=7)
        assert set(np.unique(out)) == {-1, 1}
        # roughly balanced tie-breaking
        assert 350 < np.count_nonzero(out == 1) < 650

    def test_zero_ties_reproducible_with_seed(self):
        a = ops.sign(np.zeros(64), rng=5)
        b = ops.sign(np.zeros(64), rng=5)
        np.testing.assert_array_equal(a, b)

    def test_output_dtype(self):
        assert ops.sign(np.array([2.5, -0.5])).dtype == ops.BIPOLAR_DTYPE


class TestInvertAndStack:
    def test_invert_negates(self, rng):
        a = random_hv(DIM, rng)
        np.testing.assert_array_equal(ops.invert(a), -a)

    def test_stack_builds_matrix(self, rng):
        hvs = [random_hv(DIM, rng) for _ in range(3)]
        out = ops.stack(hvs)
        assert out.shape == (3, DIM)
