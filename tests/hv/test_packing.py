"""Tests for bit-packed hypervector storage and popcount Hamming."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DimensionMismatchError
from repro.hv.packing import PackedPool, pack, packed_hamming, unpack
from repro.hv.random import random_hv, random_pool
from repro.hv.similarity import hamming


class TestPackUnpackRoundtrip:
    @pytest.mark.parametrize("dim", [8, 64, 100, 1000, 1027])
    def test_roundtrip(self, dim):
        hv = random_hv(dim, rng=dim)
        np.testing.assert_array_equal(unpack(pack(hv), dim), hv)

    def test_matrix_roundtrip(self):
        pool = random_pool(9, 333, rng=1)
        np.testing.assert_array_equal(unpack(pack(pool), 333), pool)

    def test_packed_size(self):
        hv = random_hv(1000, rng=0)
        assert pack(hv).nbytes == 125

    def test_pack_is_8x_smaller(self):
        pool = random_pool(16, 1024, rng=0)
        assert pack(pool).nbytes * 8 == pool.nbytes

    @given(st.integers(min_value=1, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_any_dim(self, dim):
        hv = random_hv(dim, rng=dim)
        np.testing.assert_array_equal(unpack(pack(hv), dim), hv)


class TestPackedHamming:
    @pytest.mark.parametrize("dim", [64, 100, 512, 1001])
    def test_matches_unpacked(self, dim):
        a = random_hv(dim, rng=1)
        b = random_hv(dim, rng=2)
        assert packed_hamming(pack(a), pack(b), dim) == pytest.approx(
            float(hamming(a, b))
        )

    def test_matrix_vs_vector(self):
        pool = random_pool(6, 300, rng=3)
        target = random_hv(300, rng=4)
        packed = packed_hamming(pack(pool), pack(target), 300)
        np.testing.assert_allclose(packed, hamming(pool, target))

    def test_identical_zero(self):
        a = random_hv(77, rng=5)
        assert packed_hamming(pack(a), pack(a), 77) == 0.0

    def test_width_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            packed_hamming(np.zeros(4, dtype=np.uint8), np.zeros(5, dtype=np.uint8), 32)

    def test_padding_bits_do_not_count(self):
        # dim=9 leaves 7 pad bits per row; they must never add distance.
        a = np.ones(9, dtype=np.int8)
        b = np.ones(9, dtype=np.int8)
        b[0] = -1
        assert packed_hamming(pack(a), pack(b), 9) == pytest.approx(1 / 9)


class TestPackedPool:
    def test_len_and_dim(self):
        pool = PackedPool(random_pool(12, 200, rng=0))
        assert len(pool) == 12
        assert pool.dim == 200

    def test_unpack_row(self):
        raw = random_pool(5, 128, rng=1)
        pool = PackedPool(raw)
        np.testing.assert_array_equal(pool.unpack_row(3), raw[3])

    def test_unpack_all(self):
        raw = random_pool(5, 128, rng=2)
        np.testing.assert_array_equal(PackedPool(raw).unpack_all(), raw)

    def test_hamming_to(self):
        raw = random_pool(5, 128, rng=3)
        pool = PackedPool(raw)
        np.testing.assert_allclose(pool.hamming_to(raw[2]), hamming(raw, raw[2]))

    def test_nbytes(self):
        pool = PackedPool(random_pool(4, 800, rng=4))
        assert pool.nbytes == 4 * 100

    def test_requires_matrix(self):
        with pytest.raises(ValueError):
            PackedPool(random_hv(64, rng=5))
