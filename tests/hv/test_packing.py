"""Tests for bit-packed hypervector storage and popcount Hamming."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.engine import binarize_batch
from repro.errors import DimensionMismatchError
from repro.hv.packing import (
    PACKED_WORD_DTYPE,
    PackedPool,
    hamming_packed,
    pack,
    pack_signs,
    pack_words,
    packed_hamming,
    packed_word_width,
    pairwise_hamming_packed,
    unpack,
    unpack_words,
)
from repro.hv.random import random_hv, random_pool
from repro.hv.similarity import hamming


class TestPackUnpackRoundtrip:
    @pytest.mark.parametrize("dim", [8, 64, 100, 1000, 1027])
    def test_roundtrip(self, dim):
        hv = random_hv(dim, rng=dim)
        np.testing.assert_array_equal(unpack(pack(hv), dim), hv)

    def test_matrix_roundtrip(self):
        pool = random_pool(9, 333, rng=1)
        np.testing.assert_array_equal(unpack(pack(pool), 333), pool)

    def test_packed_size(self):
        hv = random_hv(1000, rng=0)
        assert pack(hv).nbytes == 125

    def test_pack_is_8x_smaller(self):
        pool = random_pool(16, 1024, rng=0)
        assert pack(pool).nbytes * 8 == pool.nbytes

    @given(st.integers(min_value=1, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_any_dim(self, dim):
        hv = random_hv(dim, rng=dim)
        np.testing.assert_array_equal(unpack(pack(hv), dim), hv)


class TestPackedHamming:
    @pytest.mark.parametrize("dim", [64, 100, 512, 1001])
    def test_matches_unpacked(self, dim):
        a = random_hv(dim, rng=1)
        b = random_hv(dim, rng=2)
        assert packed_hamming(pack(a), pack(b), dim) == pytest.approx(
            float(hamming(a, b))
        )

    def test_matrix_vs_vector(self):
        pool = random_pool(6, 300, rng=3)
        target = random_hv(300, rng=4)
        packed = packed_hamming(pack(pool), pack(target), 300)
        np.testing.assert_allclose(packed, hamming(pool, target))

    def test_identical_zero(self):
        a = random_hv(77, rng=5)
        assert packed_hamming(pack(a), pack(a), 77) == 0.0

    def test_width_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            packed_hamming(np.zeros(4, dtype=np.uint8), np.zeros(5, dtype=np.uint8), 32)

    def test_padding_bits_do_not_count(self):
        # dim=9 leaves 7 pad bits per row; they must never add distance.
        a = np.ones(9, dtype=np.int8)
        b = np.ones(9, dtype=np.int8)
        b[0] = -1
        assert packed_hamming(pack(a), pack(b), 9) == pytest.approx(1 / 9)


class TestWordPacking:
    @pytest.mark.parametrize("dim", [1, 63, 64, 65, 100, 1000, 1027])
    def test_roundtrip(self, dim):
        hv = random_hv(dim, rng=dim)
        packed = pack_words(hv)
        assert packed.dtype == PACKED_WORD_DTYPE
        assert packed.shape == (packed_word_width(dim),)
        np.testing.assert_array_equal(unpack_words(packed, dim), hv)

    def test_matrix_roundtrip(self):
        pool = random_pool(9, 333, rng=1)
        np.testing.assert_array_equal(unpack_words(pack_words(pool), 333), pool)

    def test_word_width(self):
        assert packed_word_width(64) == 1
        assert packed_word_width(65) == 2
        assert packed_word_width(10_000) == 157

    def test_byte_layout_prefix_matches_pack(self):
        # The word layout is the byte layout zero-padded to a word
        # boundary: the uint8 view's leading bytes are exactly pack().
        pool = random_pool(4, 1000, rng=2)
        byte_rows = pack(pool)
        word_rows = pack_words(pool)
        view = word_rows.view(np.uint8)
        np.testing.assert_array_equal(view[:, : byte_rows.shape[1]], byte_rows)
        assert not view[:, byte_rows.shape[1] :].any()

    @pytest.mark.parametrize("dim", [64, 100, 999])
    def test_hamming_matches_byte_layout(self, dim):
        a, b = random_pool(5, dim, rng=3), random_hv(dim, rng=4)
        np.testing.assert_allclose(
            hamming_packed(pack_words(a), pack_words(b), dim),
            hamming_packed(pack(a), pack(b), dim),
        )

    def test_pairwise_hamming_words(self):
        a, b = random_pool(6, 130, rng=5), random_pool(4, 130, rng=6)
        np.testing.assert_allclose(
            pairwise_hamming_packed(pack_words(a), pack_words(b), 130, 2),
            pairwise_hamming_packed(pack(a), pack(b), 130, 2),
        )

    def test_mixed_layouts_rejected(self):
        pool = random_pool(3, 128, rng=7)
        with pytest.raises(DimensionMismatchError):
            hamming_packed(pack_words(pool), pack(pool), 128)
        with pytest.raises(DimensionMismatchError):
            pairwise_hamming_packed(pack(pool), pack_words(pool), 128)

    def test_unpack_words_rejects_byte_layout(self):
        # Value-casting a pack() byte row to uint64 words would decode
        # to garbage; the mix-up must raise, not return wrong bits.
        pool = random_pool(3, 128, rng=8)
        with pytest.raises(DimensionMismatchError):
            unpack_words(pack(pool), 128)


class TestPackSigns:
    @pytest.mark.parametrize("dim", [64, 100, 251])
    @pytest.mark.parametrize("rows", [0, 1, 9])
    def test_matches_binarize_then_pack(self, dim, rows):
        # Small integer accums with plenty of exact zeros (ties).
        accums = np.random.default_rng(dim + rows).integers(-2, 3, (rows, dim))
        got = pack_signs(accums, np.random.default_rng(42))
        want = pack_words(binarize_batch(accums, np.random.default_rng(42)))
        assert got.dtype == PACKED_WORD_DTYPE
        np.testing.assert_array_equal(got, want)

    def test_float_accums_match_integer_accums(self):
        # The fused blas path hands float accumulators to pack_signs;
        # exact float zeros must tie-break identically to int zeros.
        accums = np.random.default_rng(0).integers(-3, 4, (7, 100))
        got = pack_signs(accums.astype(np.float32), np.random.default_rng(7))
        want = pack_signs(accums, np.random.default_rng(7))
        np.testing.assert_array_equal(got, want)

    def test_out_buffer_written_in_place(self):
        accums = np.random.default_rng(1).integers(-2, 3, (5, 130))
        out = np.empty((5, packed_word_width(130)), dtype=PACKED_WORD_DTYPE)
        result = pack_signs(accums, np.random.default_rng(3), out=out)
        assert result is out
        np.testing.assert_array_equal(
            out, pack_signs(accums, np.random.default_rng(3))
        )

    def test_bad_out_buffer_rejected(self):
        accums = np.zeros((2, 64))
        with pytest.raises(DimensionMismatchError):
            pack_signs(accums, out=np.empty((2, 5), dtype=PACKED_WORD_DTYPE))
        with pytest.raises(DimensionMismatchError):
            pack_signs(np.zeros(64))  # 1-D input

    def test_tie_stream_consumed_row_by_row(self):
        # Two batches that differ only in a later row must agree on all
        # earlier rows' tie draws.
        accums = np.zeros((3, 65), dtype=np.int64)
        accums[2, 0] = 5
        a = pack_signs(accums, np.random.default_rng(9))
        accums2 = accums.copy()
        accums2[2] = -1
        b = pack_signs(accums2, np.random.default_rng(9))
        np.testing.assert_array_equal(a[:2], b[:2])


class TestPackedPool:
    def test_len_and_dim(self):
        pool = PackedPool(random_pool(12, 200, rng=0))
        assert len(pool) == 12
        assert pool.dim == 200

    def test_unpack_row(self):
        raw = random_pool(5, 128, rng=1)
        pool = PackedPool(raw)
        np.testing.assert_array_equal(pool.unpack_row(3), raw[3])

    def test_unpack_all(self):
        raw = random_pool(5, 128, rng=2)
        np.testing.assert_array_equal(PackedPool(raw).unpack_all(), raw)

    def test_hamming_to(self):
        raw = random_pool(5, 128, rng=3)
        pool = PackedPool(raw)
        np.testing.assert_allclose(pool.hamming_to(raw[2]), hamming(raw, raw[2]))

    def test_nbytes(self):
        pool = PackedPool(random_pool(4, 800, rng=4))
        assert pool.nbytes == 4 * 100

    def test_requires_matrix(self):
        with pytest.raises(ValueError):
            PackedPool(random_hv(64, rng=5))


class TestPairwiseHammingErrorContract:
    def test_missing_dim_raises_repro_error(self):
        """dim=None must surface as the package's DimensionMismatchError,
        not a bare ValueError — callers catch ReproError subtypes."""
        rows = pack(random_pool(2, 64, rng=9))
        with pytest.raises(DimensionMismatchError, match="dim"):
            pairwise_hamming_packed(rows, rows)
