"""Tests for pool property reports (orthogonality / level linearity)."""

import numpy as np
import pytest

from repro.hv.level import level_hvs
from repro.hv.properties import (
    expected_random_deviation,
    level_linearity_report,
    orthogonality_report,
)
from repro.hv.random import random_pool


class TestOrthogonalityReport:
    def test_random_pool_is_quasi_orthogonal(self):
        report = orthogonality_report(random_pool(30, 4096, rng=0))
        assert report.pairs == 30 * 29 // 2
        assert report.mean_distance == pytest.approx(0.5, abs=0.01)
        assert report.is_quasi_orthogonal(6 * expected_random_deviation(4096))

    def test_correlated_pool_flagged(self):
        levels = level_hvs(8, 2048, rng=1)
        report = orthogonality_report(levels)
        # adjacent levels are very close -> far from orthogonal
        assert not report.is_quasi_orthogonal(0.1)
        assert report.max_abs_deviation > 0.3

    def test_single_row(self):
        report = orthogonality_report(random_pool(1, 64, rng=2))
        assert report.pairs == 0
        assert report.is_quasi_orthogonal(0.0)

    def test_duplicate_rows_detected(self):
        row = random_pool(1, 512, rng=3)
        pool = np.vstack([row, row])
        report = orthogonality_report(pool)
        assert report.max_abs_deviation == pytest.approx(0.5)


class TestLevelLinearityReport:
    def test_well_formed_levels(self):
        levels = level_hvs(10, 4096, rng=4)
        report = level_linearity_report(levels)
        assert report.levels == 10
        assert report.extreme_distance == pytest.approx(0.5, abs=0.01)
        assert report.is_linear(0.02)

    def test_random_pool_is_not_linear(self):
        pool = random_pool(10, 2048, rng=5)
        report = level_linearity_report(pool)
        assert not report.is_linear(0.05)


class TestExpectedRandomDeviation:
    def test_scaling(self):
        assert expected_random_deviation(10_000) == pytest.approx(0.005)
        assert expected_random_deviation(100) == pytest.approx(0.05)
