"""Property-based tests of the hypervector substrate.

Randomized algebraic laws over arbitrary shapes — the HDXplore-style
harness guarding the kernels every encoder, classifier, and attack is
built from: bind is a self-inverse involution, permutation composes to
identity, packing round-trips, and the packed XOR-popcount Hamming
kernels agree exactly with their dense counterparts.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hv.ops import bind, permute, permute_inverse
from repro.hv.packing import (
    hamming_packed,
    pack,
    pairwise_hamming_packed,
    unpack,
)
from repro.hv.random import random_pool
from repro.hv.similarity import hamming, nearest, nearest_batch, pairwise_hamming

SETTINGS = settings(max_examples=25, deadline=None)

dims = st.integers(min_value=1, max_value=160)
counts = st.integers(min_value=1, max_value=9)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


@given(dims, counts, seeds)
@SETTINGS
def test_bind_is_self_inverse(dim, count, seed):
    pool = random_pool(2 * count, dim, rng=seed)
    a, b = pool[:count], pool[count:]
    np.testing.assert_array_equal(bind(bind(a, b), b), a)
    # ...and commutative, while we're here.
    np.testing.assert_array_equal(bind(a, b), bind(b, a))


@given(dims, st.integers(min_value=-500, max_value=500), seeds)
@SETTINGS
def test_permute_roundtrip(dim, k, seed):
    hv = random_pool(1, dim, rng=seed)[0]
    np.testing.assert_array_equal(permute_inverse(permute(hv, k), k), hv)
    # rho_k o rho_{-k} == identity stated the other way around:
    np.testing.assert_array_equal(permute(permute(hv, -k), k), hv)


@given(dims, counts, seeds)
@SETTINGS
def test_pack_unpack_roundtrip(dim, count, seed):
    pool = random_pool(count, dim, rng=seed)
    np.testing.assert_array_equal(unpack(pack(pool), dim), pool)


@given(dims, seeds)
@SETTINGS
def test_hamming_matches_packed(dim, seed):
    pool = random_pool(2, dim, rng=seed)
    dense = float(hamming(pool[0], pool[1]))
    packed = hamming_packed(pack(pool[0]), pack(pool[1]), dim)
    assert packed == dense  # both are exact multiples of 1/dim


@given(dims, counts, seeds)
@SETTINGS
def test_hamming_stack_matches_packed(dim, count, seed):
    pool = random_pool(count + 1, dim, rng=seed)
    stack, target = pool[:-1], pool[-1]
    np.testing.assert_array_equal(
        np.asarray(hamming_packed(pack(stack), pack(target), dim)),
        np.asarray(hamming(stack, target)),
    )


@given(dims, counts, counts, seeds, st.integers(min_value=1, max_value=4))
@SETTINGS
def test_pairwise_packed_matches_dense(dim, ka, kb, seed, chunk):
    a = random_pool(ka, dim, rng=seed)
    b = random_pool(kb, dim, rng=seed + 1)
    got = pairwise_hamming_packed(pack(a), pack(b), dim, chunk_size=chunk)
    want = np.array([[float(hamming(x, y)) for y in b] for x in a])
    np.testing.assert_array_equal(got, want)


@given(
    st.integers(min_value=2, max_value=160),
    counts,
    seeds,
    st.integers(min_value=1, max_value=5),
)
@SETTINGS
def test_pairwise_hamming_chunking_invariant(dim, count, seed, chunk):
    pool = random_pool(count, dim, rng=seed)
    np.testing.assert_allclose(
        pairwise_hamming(pool, chunk_size=chunk), pairwise_hamming(pool)
    )


@given(st.integers(min_value=8, max_value=160), counts, counts, seeds)
@SETTINGS
def test_nearest_batch_matches_nearest(dim, pool_count, target_count, seed):
    pool = random_pool(pool_count, dim, rng=seed)
    targets = random_pool(target_count, dim, rng=seed + 7)
    for metric in ("hamming", "cosine"):
        got = nearest_batch(pool, targets, metric=metric)
        want = np.array([nearest(pool, t, metric=metric) for t in targets])
        np.testing.assert_array_equal(got, want)


@given(st.integers(min_value=8, max_value=96), counts, seeds)
@SETTINGS
def test_nearest_batch_nonbipolar_fallback(dim, count, seed):
    # Integer (non-bipolar) pools take the dense path; decisions must
    # still match per-target nearest().
    gen = np.random.default_rng(seed)
    pool = gen.integers(-3, 4, size=(count, dim))
    targets = gen.integers(-3, 4, size=(3, dim))
    got = nearest_batch(pool, targets, metric="hamming")
    want = np.array([nearest(pool, t, metric="hamming") for t in targets])
    np.testing.assert_array_equal(got, want)
