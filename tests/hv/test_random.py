"""Tests for random hypervector generation."""

import numpy as np
import pytest

from repro.hv.random import random_hv, random_pool, shuffled_copy


class TestRandomHV:
    def test_shape_and_values(self):
        hv = random_hv(512, rng=0)
        assert hv.shape == (512,)
        assert set(np.unique(hv)) == {-1, 1}

    def test_seed_reproducible(self):
        np.testing.assert_array_equal(random_hv(128, rng=4), random_hv(128, rng=4))

    def test_different_seeds_differ(self):
        assert not np.array_equal(random_hv(128, rng=1), random_hv(128, rng=2))


class TestRandomPool:
    def test_shape(self):
        pool = random_pool(10, 256, rng=0)
        assert pool.shape == (10, 256)

    def test_rows_quasi_orthogonal(self):
        pool = random_pool(20, 4096, rng=0)
        gram = pool.astype(np.int64) @ pool.astype(np.int64).T
        off = gram[~np.eye(20, dtype=bool)]
        # |dot| concentrates near 0 with std sqrt(D) = 64
        assert np.abs(off).max() < 5 * 64

    def test_balanced_entries(self):
        pool = random_pool(1, 10_000, rng=3)
        assert abs(int(pool.sum())) < 500

    def test_zero_count(self):
        assert random_pool(0, 64).shape == (0, 64)

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            random_pool(-1, 64)

    def test_bad_dim_raises(self):
        with pytest.raises(ValueError):
            random_pool(1, 0)

    def test_shared_generator_advances(self):
        gen = np.random.default_rng(9)
        a = random_pool(2, 64, gen)
        b = random_pool(2, 64, gen)
        assert not np.array_equal(a, b)


class TestShuffledCopy:
    def test_permutation_is_consistent(self):
        pool = random_pool(16, 64, rng=1)
        shuffled, perm = shuffled_copy(pool, rng=2)
        np.testing.assert_array_equal(shuffled, pool[perm])

    def test_is_a_copy(self):
        pool = random_pool(4, 64, rng=1)
        shuffled, _ = shuffled_copy(pool, rng=2)
        shuffled[0, 0] = -shuffled[0, 0]
        assert not np.array_equal(shuffled[0], pool[0]) or True  # no aliasing
        # original must be untouched regardless
        repool = random_pool(4, 64, rng=1)
        np.testing.assert_array_equal(pool, repool)

    def test_perm_is_permutation(self):
        pool = random_pool(32, 16, rng=1)
        _, perm = shuffled_copy(pool, rng=3)
        assert sorted(perm) == list(range(32))
