"""Tests for similarity metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DimensionMismatchError
from repro.hv.random import random_hv, random_pool
from repro.hv.similarity import cosine, dot, hamming, nearest, pairwise_hamming

DIM = 512


class TestHamming:
    def test_identical_is_zero(self, rng):
        a = random_hv(DIM, rng)
        assert hamming(a, a) == 0.0

    def test_negation_is_one(self, rng):
        a = random_hv(DIM, rng)
        assert hamming(a, -a) == 1.0

    def test_random_pair_near_half(self, rng):
        a = random_hv(8192, rng)
        b = random_hv(8192, rng)
        assert abs(hamming(a, b) - 0.5) < 0.05

    def test_known_value(self):
        a = np.array([1, 1, 1, 1], dtype=np.int8)
        b = np.array([1, -1, 1, -1], dtype=np.int8)
        assert hamming(a, b) == 0.5

    def test_broadcast_pool(self, rng):
        pool = random_pool(5, DIM, rng)
        out = hamming(pool, pool[2])
        assert out.shape == (5,)
        assert out[2] == 0.0

    def test_relates_to_dot(self, rng):
        a = random_hv(DIM, rng)
        b = random_hv(DIM, rng)
        expected = (1 - dot(a, b) / DIM) / 2
        assert hamming(a, b) == pytest.approx(float(expected))

    def test_dim_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            hamming(np.ones(3), np.ones(4))

    @given(st.integers(min_value=0, max_value=64))
    @settings(max_examples=20, deadline=None)
    def test_flip_count_exact(self, flips):
        a = np.ones(64, dtype=np.int8)
        b = a.copy()
        b[:flips] = -1
        assert hamming(a, b) == flips / 64


class TestCosine:
    def test_identical_is_one(self, rng):
        a = random_hv(DIM, rng)
        assert cosine(a, a) == pytest.approx(1.0)

    def test_negation_is_minus_one(self, rng):
        a = random_hv(DIM, rng)
        assert cosine(a, -a) == pytest.approx(-1.0)

    def test_scale_invariant(self, rng):
        a = rng.normal(size=DIM)
        assert cosine(a, 7.5 * a) == pytest.approx(1.0)

    def test_zero_vector_scores_zero(self, rng):
        a = random_hv(DIM, rng)
        assert cosine(np.zeros(DIM), a) == 0.0

    def test_broadcast(self, rng):
        pool = random_pool(4, DIM, rng)
        out = cosine(pool, pool[1])
        assert out.shape == (4,)
        assert out[1] == pytest.approx(1.0)


class TestPairwiseHamming:
    def test_matches_pairwise_calls(self, rng):
        pool = random_pool(6, DIM, rng)
        mat = pairwise_hamming(pool)
        for i in range(6):
            for j in range(6):
                assert mat[i, j] == pytest.approx(float(hamming(pool[i], pool[j])))

    def test_diagonal_zero_symmetric(self, rng):
        pool = random_pool(8, DIM, rng)
        mat = pairwise_hamming(pool)
        np.testing.assert_allclose(np.diag(mat), 0.0)
        np.testing.assert_allclose(mat, mat.T)

    def test_requires_matrix(self, rng):
        with pytest.raises(ValueError):
            pairwise_hamming(random_hv(DIM, rng))


class TestNearest:
    def test_hamming_metric(self, rng):
        pool = random_pool(10, DIM, rng)
        assert nearest(pool, pool[7], metric="hamming") == 7

    def test_cosine_metric(self, rng):
        pool = random_pool(10, DIM, rng)
        assert nearest(pool, pool[4], metric="cosine") == 4

    def test_unknown_metric(self, rng):
        pool = random_pool(2, DIM, rng)
        with pytest.raises(ValueError):
            nearest(pool, pool[0], metric="euclid")
