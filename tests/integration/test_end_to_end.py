"""Integration tests spanning the whole stack.

These walk the paper's narrative end to end on one small instance:
train a model, deploy it under the threat model, steal it, verify the
clone, lock it with HDLock, verify the attack collapses, and check the
defender's security/overhead accounting.
"""

import numpy as np
import pytest

from repro import (
    HDClassifier,
    RecordEncoder,
    create_locked_encoder,
    expose_locked_model,
    expose_model,
    evaluate_theft,
    guess_distance_series,
    hdlock_total_guesses,
    lock_model,
    plain_total_guesses,
    relative_encoding_time,
    run_reasoning_attack,
    security_improvement,
    sweep_parameter,
    train_model,
    verify_mapping,
)
from repro.attack import as_attack_surface
from repro.data import SyntheticSpec, make_dataset

N, M, D, C = 48, 8, 2048, 4


@pytest.fixture(scope="module")
def dataset():
    spec = SyntheticSpec(
        name="e2e",
        n_features=N,
        n_classes=C,
        levels=M,
        train_samples=160,
        test_samples=80,
        noise_sigma=0.3,
        boundary_fraction=0.2,
    )
    return make_dataset(spec, rng=0)


class TestFullAttackDefenseCycle:
    @pytest.mark.parametrize("binary", [True, False])
    def test_story(self, dataset, binary):
        # 1. The victim trains a model (the IP).
        encoder = RecordEncoder.random(N, M, D, rng=1)
        training = train_model(
            encoder,
            dataset.train_x,
            dataset.train_y,
            n_classes=C,
            binary=binary,
            retrain_epochs=2,
            rng=2,
        )
        original = training.model.score(dataset.test_x, dataset.test_y)
        assert original > 0.6

        # 2. Deployment exposes only shuffled pools + oracle (Sec. 3.1).
        surface, truth = expose_model(encoder, binary=binary, rng=3)

        # 3. The reasoning attack steals the full mapping (Sec. 3.2).
        result = run_reasoning_attack(surface, rng=4)
        assert verify_mapping(result, truth).exact

        # 4. The reconstructed model matches the original (Table 1).
        report, _ = evaluate_theft(
            original, surface, result, dataset, binary=binary, rng=5
        )
        assert abs(report.accuracy_gap) < 0.1

        # 5. The defender locks the model; accuracy holds (Fig. 8).
        system, locked_training = lock_model(
            encoder,
            dataset.train_x,
            dataset.train_y,
            n_classes=C,
            layers=2,
            binary=binary,
            retrain_epochs=2,
            rng=6,
        )
        locked_accuracy = locked_training.model.score(
            dataset.test_x, dataset.test_y
        )
        assert locked_accuracy > original - 0.12

        # 6. The plain attack collapses against the locked deployment.
        locked_surface, _ = expose_locked_model(system.encoder, binary=True)
        series = guess_distance_series(
            as_attack_surface(locked_surface), np.arange(M), feature=0
        )
        assert series.min() > 0.3

        # 7. The only remaining attack needs (D*P)^L guesses per feature
        #    (Sec. 4.2) — identifiable but astronomically many.
        sweep = sweep_parameter(
            locked_surface, system.key, "rotation", 0, max_wrong=25
        )
        assert sweep.separation > 0
        assert security_improvement(N, D, N, 2) == pytest.approx(
            hdlock_total_guesses(N, D, N, 2) / plain_total_guesses(N)
        )

        # 8. And the latency bill is the paper's 21 % at L=2.
        assert relative_encoding_time(2, N, 10_000) == pytest.approx(
            1.21, abs=0.01
        )


class TestLockedModelServing:
    def test_locked_classifier_is_a_dropin(self, dataset):
        """A locked encoder plugs into HDClassifier unchanged."""
        system = create_locked_encoder(N, M, D, layers=2, rng=7)
        model = HDClassifier(system.encoder, C, binary=True, rng=8)
        model.fit(dataset.train_x, dataset.train_y)
        assert model.score(dataset.test_x, dataset.test_y) > 0.6

    def test_key_rotation_recovers_accuracy_after_retrain(self, dataset):
        """Re-keying (e.g. after suspected leakage) + retraining restores
        service; stale class HVs under the new key do not."""
        system = create_locked_encoder(N, M, D, layers=2, rng=9)
        model = HDClassifier(system.encoder, C, binary=False, rng=10)
        model.fit(dataset.train_x, dataset.train_y)
        before = model.score(dataset.test_x, dataset.test_y)

        from repro.hdlock.keygen import generate_key

        new_key = generate_key(N, 2, N, D, rng=11)
        rekeyed_encoder = system.encoder.rekey(new_key)
        stale = HDClassifier(rekeyed_encoder, C, binary=False, rng=12)
        stale._accums = model._accums  # serve old class HVs on new key
        degraded = stale.score(dataset.test_x, dataset.test_y)
        assert degraded < before - 0.2

        fresh = HDClassifier(rekeyed_encoder, C, binary=False, rng=13)
        fresh.fit(dataset.train_x, dataset.train_y)
        assert fresh.score(dataset.test_x, dataset.test_y) > before - 0.1
