"""Run every example script as a subprocess — the examples are part of
the public API contract and must keep working."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

#: (script, seconds budget) — the heavier walkthroughs get more time on
#: slow CI machines.
EXAMPLES = [
    ("quickstart.py", 120),
    ("steal_unprotected_model.py", 300),
    ("lock_and_defend.py", 300),
    ("hardware_tradeoff.py", 120),
    ("sequence_lock.py", 120),
    ("benchmark_suite.py", 600),
]


@pytest.mark.parametrize("script,budget", EXAMPLES)
def test_example_runs_clean(script, budget):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=budget,
    )
    assert proc.returncode == 0, (
        f"{script} failed:\n--- stdout ---\n{proc.stdout}\n"
        f"--- stderr ---\n{proc.stderr}"
    )
    assert proc.stdout.strip(), f"{script} printed nothing"


def test_examples_dir_has_no_strays():
    """Every example on disk is exercised by this test."""
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    covered = {name for name, _ in EXAMPLES}
    assert on_disk == covered
