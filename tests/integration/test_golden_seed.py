"""Golden-seed regression hashes for encoder and classifier numerics.

SHA-256 digests of pinned-seed outputs across every encoder family and
both classifier flavors. The batch-engine parity suite proves today's
kernels bit-exact against the per-sample reference; these hashes freeze
that agreement so a *future* kernel rewrite (SIMD, packed accumulation,
GPU backend) cannot silently shift numerics — any change that is not
bit-exact must consciously update the digests.

The digests cover raw bytes plus shape and dtype, so a dtype regression
(e.g. int64 accumulations silently narrowing) fails even when the values
round-trip.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.encoding.ngram import NGramEncoder
from repro.encoding.record import RecordEncoder
from repro.hdlock.lock import create_locked_encoder
from repro.hv.random import random_pool
from repro.model.classifier import HDClassifier

GOLDEN = {
    "record-binary": "986daf59461e514cba9695f5cd2e296371de602869e2cec7f2b787e84065d8fe",
    "record-nonbinary": "652692124c46af092b26fd893dd06806bca6de75fe6a84fc339948cbee8711de",
    # Re-pinned when generate_key became a wrapper over the vectorized
    # bulk keygen core: the key draw now consumes the seeded stream in
    # batched integers() calls, so seeded *keys* (not encoder numerics)
    # changed. Encoding kernels are untouched — every other digest held.
    "locked-binary": "cbe5534f2fab2f2aa733877ff4577ded95a40277d9ba0b0228365545e71b771a",
    "ngram-binary": "d4079e0ec08e4a2a67c7fb680e3f9f5833b2b84d64d4d51759766bf02068201c",
    "ngram-nonbinary": "7f07a1a4096f584c5d1a9afa75021b1526ba2be502998feb58f89c92d3718493",
    "classifier-class-matrix": "d40419c71bfe6ffedee95a01edc22b01e194b9b7973c5636346d90d4310cb9fb",
    "classifier-predictions": "d784a2d99cbc0a87aca455ca4b7528a908693a709a494faaf6d285f3d0ea67c5",
    "classifier-nonbinary-accums": "5452808c656b757530b4ee704dee609bc8aaffe86e54295ab5ca9c9cf99e24df",
    "classifier-nonbinary-predictions": "f61a94fae465e7b88294ae6ea8de80119f9042a866b7571117a4e465cc6373a5",
}


def _digest(arr: np.ndarray) -> str:
    arr = np.ascontiguousarray(arr)
    h = hashlib.sha256()
    h.update(str((arr.shape, str(arr.dtype))).encode())
    h.update(arr.tobytes())
    return h.hexdigest()


def test_record_encoder_digests():
    encoder = RecordEncoder.random(25, 8, 512, rng=1234)
    samples = np.random.default_rng(99).integers(0, 8, (12, 25))
    assert (
        _digest(encoder.encode_batch(samples, binary=True)) == GOLDEN["record-binary"]
    )
    assert (
        _digest(encoder.encode_batch(samples, binary=False))
        == GOLDEN["record-nonbinary"]
    )


def test_locked_encoder_digest():
    encoder = create_locked_encoder(15, 6, 512, layers=2, rng=77).encoder
    samples = np.random.default_rng(41).integers(0, 6, (9, 15))
    assert (
        _digest(encoder.encode_batch(samples, binary=True)) == GOLDEN["locked-binary"]
    )


def test_ngram_encoder_digests():
    encoder = NGramEncoder(random_pool(7, 384, rng=5), n=3, rng=11)
    seqs = np.random.default_rng(3).integers(0, 7, (8, 20))
    assert _digest(encoder.encode_batch(seqs, binary=True)) == GOLDEN["ngram-binary"]
    assert (
        _digest(encoder.encode_batch(seqs, binary=False)) == GOLDEN["ngram-nonbinary"]
    )


def _training_data():
    gen = np.random.default_rng(17)
    return gen.integers(0, 8, (60, 20)), gen.integers(0, 3, 60)


def test_binary_classifier_digests():
    samples, labels = _training_data()
    model = HDClassifier(
        RecordEncoder.random(20, 8, 512, rng=31), n_classes=3, binary=True, rng=8
    ).fit(samples, labels)
    assert _digest(model.class_matrix) == GOLDEN["classifier-class-matrix"]
    assert _digest(model.predict(samples)) == GOLDEN["classifier-predictions"]


def test_nonbinary_classifier_digests():
    samples, labels = _training_data()
    model = HDClassifier(
        RecordEncoder.random(20, 8, 512, rng=31), n_classes=3, binary=False, rng=8
    ).fit(samples, labels)
    assert _digest(model.class_matrix) == GOLDEN["classifier-nonbinary-accums"]
    assert (
        _digest(model.predict(samples)) == GOLDEN["classifier-nonbinary-predictions"]
    )
