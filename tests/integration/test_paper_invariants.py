"""Property-based tests of the paper's equations as cross-module invariants.

Each test states one identity from the paper and checks it over
randomized instances (hypothesis drives shapes and seeds). These are the
load-bearing facts the attack and the defense both rest on; if any
refactor breaks one, the reproduction is no longer the paper.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attack.threat_model import expose_model
from repro.attack.value_extraction import extract_value_mapping
from repro.encoding.locked import LockedEncoder
from repro.encoding.record import RecordEncoder
from repro.hdlock.feature_factory import derive_feature_matrix
from repro.hdlock.keygen import generate_key
from repro.hv.capacity import expected_member_distance
from repro.hv.ops import bind, bundle, permute, sign
from repro.hv.random import random_pool
from repro.hv.similarity import hamming
from repro.memory.item_memory import LevelMemory

seeds = st.integers(min_value=0, max_value=2**31 - 1)


class TestEq2Encoding:
    """H_nb = sum_i ValHV[f_i] * FeaHV_i — linearity and symmetry."""

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_feature_order_is_a_relabeling(self, seed):
        """Permuting (FeaHV_i, f_i) pairs together leaves H unchanged —
        the commutativity that lets the attacker treat the pool sum as
        mapping-free (Sec. 3.2)."""
        rng = np.random.default_rng(seed)
        enc = RecordEncoder.random(12, 4, 512, rng=seed)
        sample = rng.integers(0, 4, 12)
        perm = rng.permutation(12)
        permuted = RecordEncoder(
            enc.feature_memory.remapped(perm), enc.level_memory
        )
        np.testing.assert_array_equal(
            enc.encode_nonbinary(sample),
            permuted.encode_nonbinary(sample[perm]),
        )

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_single_feature_model_is_pure_bind(self, seed):
        """With N = 1, encoding degenerates to one bind — no bundle
        noise, H = ValHV[f] * FeaHV exactly."""
        rng = np.random.default_rng(seed)
        enc = RecordEncoder.random(1, 4, 256, rng=seed)
        level = int(rng.integers(0, 4))
        out = enc.encode_nonbinary(np.array([level]))
        expected = bind(
            enc.level_memory.vector(level), enc.feature_matrix[0]
        ).astype(np.int64)
        np.testing.assert_array_equal(out, expected)


class TestEq5Factorization:
    """sign(sum FeaHV_i * V) = V * sign(sum FeaHV_i) for bipolar V."""

    @given(seeds, st.integers(min_value=3, max_value=31))
    @settings(max_examples=10, deadline=None)
    def test_constant_value_factors_out(self, seed, n_features):
        if n_features % 2 == 0:
            n_features += 1  # odd N: no sign ties, identity is exact
        enc = RecordEncoder.random(n_features, 3, 512, rng=seed)
        out = enc.encode(np.zeros(n_features, dtype=np.int64), binary=True)
        v1 = enc.level_memory.minimum
        feature_sum_sign = sign(bundle(enc.feature_matrix))
        np.testing.assert_array_equal(out, bind(v1, feature_sum_sign))


class TestEq1bLevels:
    """Hamm(ValHV_v1, ValHV_v2) = 0.5 |v1 - v2| / (M - 1)."""

    @given(seeds, st.integers(min_value=2, max_value=12))
    @settings(max_examples=10, deadline=None)
    def test_linearity_at_scale(self, seed, levels):
        memory = LevelMemory.random(levels, 4096, rng=seed)
        v1, v2 = 0, levels - 1
        assert float(
            hamming(memory.vector(v1), memory.vector(v2))
        ) == pytest.approx(0.5, abs=0.02)
        mid = levels // 2
        assert float(
            hamming(memory.vector(0), memory.vector(mid))
        ) == pytest.approx(0.5 * mid / (levels - 1), abs=0.02)


class TestEq9LockedDerivation:
    """FeaHV_i = prod_l rho^{k_il}(B_il) — algebraic structure."""

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_rotation_distributes_over_binding(self, seed):
        """rho_k(a * b) == rho_k(a) * rho_k(b): rotating a derived
        feature HV equals deriving from uniformly shifted rotations —
        the equivalence class structure of the key space."""
        rng = np.random.default_rng(seed)
        a, b = random_pool(2, 512, rng)
        k = int(rng.integers(0, 512))
        np.testing.assert_array_equal(
            permute(bind(a, b), k), bind(permute(a, k), permute(b, k))
        )

    @given(seeds)
    @settings(max_examples=8, deadline=None)
    def test_locked_encoder_equals_plain_with_derived_memory(self, seed):
        """A LockedEncoder is exactly a RecordEncoder over the derived
        matrix — HDLock changes key management, not encoding semantics
        (why Fig. 8 is flat)."""
        rng = np.random.default_rng(seed)
        pool = random_pool(8, 512, rng=seed)
        levels = LevelMemory.random(4, 512, rng=seed + 1)
        key = generate_key(10, 2, 8, 512, rng=seed + 2)
        locked = LockedEncoder(pool, levels, key)
        from repro.memory.item_memory import FeatureMemory

        plain = RecordEncoder(
            FeatureMemory(derive_feature_matrix(pool, key)), levels
        )
        sample = rng.integers(0, 4, 10)
        np.testing.assert_array_equal(
            locked.encode_nonbinary(sample), plain.encode_nonbinary(sample)
        )


class TestAttackInvariance:
    """The attack's output is covariant with the publish shuffle."""

    @given(seeds)
    @settings(max_examples=6, deadline=None)
    def test_value_extraction_tracks_any_shuffle(self, seed):
        enc = RecordEncoder.random(17, 6, 1024, rng=seed)
        for publish_seed in (seed + 1, seed + 2):
            surface, truth = expose_model(enc, binary=True, rng=publish_seed)
            result = extract_value_mapping(surface, rng=publish_seed)
            np.testing.assert_array_equal(
                result.level_order, truth.value_assignment
            )


class TestCapacityExplainsFig3:
    """The Fig. 3 correct-guess floor is the bundle-capacity member
    distance; the encoder's N sets it."""

    @given(st.sampled_from([33, 65, 129, 257]))
    @settings(max_examples=4, deadline=None)
    def test_member_distance_matches_encoding_noise(self, n_features):
        enc = RecordEncoder.random(n_features, 2, 4096, rng=n_features)
        # all-max input: H = sign(sum FeaHV_i * ValHV_M); the bound pair
        # (FeaHV_0 * ValHV_M) is a bundle member.
        sample = np.ones(n_features, dtype=np.int64)
        encoded = enc.encode(sample, binary=True)
        member = bind(enc.feature_matrix[0], enc.level_memory.maximum)
        measured = float(hamming(encoded, member))
        predicted = expected_member_distance(n_features)
        assert measured == pytest.approx(predicted, abs=0.04)
