"""Contract tests for the top-level public API surface."""

import subprocess
import sys

import pytest

import repro


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__ == "1.5.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_core_workflow_symbols_present(self):
        # the names the README quickstart uses must stay exported
        for name in (
            "RecordEncoder",
            "LockedEncoder",
            "HDClassifier",
            "train_model",
            "load_benchmark",
            "expose_model",
            "run_reasoning_attack",
            "verify_mapping",
            "lock_model",
            "generate_key",
            "relative_encoding_time",
        ):
            assert name in repro.__all__

    def test_subpackage_alls_resolve(self):
        import repro.arena
        import repro.attack
        import repro.data
        import repro.encoding
        import repro.hardware
        import repro.hdlock
        import repro.hv
        import repro.memory
        import repro.model
        import repro.utils

        for module in (
            repro.arena,
            repro.attack,
            repro.data,
            repro.encoding,
            repro.hardware,
            repro.hdlock,
            repro.hv,
            repro.memory,
            repro.model,
            repro.utils,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_errors_inherit_base(self):
        from repro import errors

        subclasses = [
            errors.DimensionMismatchError,
            errors.NotBipolarError,
            errors.SecureMemoryError,
            errors.KeyFormatError,
            errors.AttackError,
            errors.ConfigurationError,
        ]
        for exc in subclasses:
            assert issubclass(exc, errors.ReproError)


class TestModuleEntryPoints:
    @pytest.mark.parametrize(
        "module", ["repro", "repro.experiments.runner"]
    )
    def test_runner_entry(self, module):
        proc = subprocess.run(
            [sys.executable, "-m", module, "--only", "fig7"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "Fig. 7a" in proc.stdout
        assert "RuntimeWarning" not in proc.stderr

    def test_runner_rejects_unknown(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--only", "nope"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode != 0

    def test_docstring_quickstart_runs(self):
        """The package docstring promises a workflow; keep it honest
        (smoke version with tiny sizes)."""
        from repro import (
            RecordEncoder,
            expose_model,
            load_benchmark,
            lock_encoder,
            run_reasoning_attack,
            train_model,
        )

        ds = load_benchmark("pamap", rng=0, sample_scale=0.05)
        encoder = RecordEncoder.random(ds.n_features, ds.levels, 512, rng=0)
        model = train_model(
            encoder, ds.train_x, ds.train_y, ds.n_classes, retrain_epochs=1
        ).model
        assert 0.0 <= model.score(ds.test_x, ds.test_y) <= 1.0
        surface, _ = expose_model(encoder, rng=1)
        result = run_reasoning_attack(surface)
        assert result.total_queries == ds.n_features + 1
        locked = lock_encoder(encoder, layers=2, rng=2)
        assert locked.layers == 2
