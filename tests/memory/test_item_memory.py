"""Tests for indexed item memories."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DimensionMismatchError
from repro.hv.similarity import hamming
from repro.memory.item_memory import FeatureMemory, LevelMemory


class TestFeatureMemory:
    def test_random_shape(self):
        mem = FeatureMemory.random(10, 256, rng=0)
        assert mem.n_features == 10
        assert mem.dim == 256

    def test_vector_indexing(self):
        mem = FeatureMemory.random(5, 128, rng=1)
        np.testing.assert_array_equal(mem.vector(3), mem.matrix[3])

    def test_rejects_vector_input(self):
        with pytest.raises(ConfigurationError):
            FeatureMemory(np.ones(16, dtype=np.int8))

    def test_remapped(self):
        mem = FeatureMemory.random(4, 64, rng=2)
        perm = np.array([2, 0, 3, 1])
        remapped = mem.remapped(perm)
        for i, j in enumerate(perm):
            np.testing.assert_array_equal(remapped.vector(i), mem.vector(j))

    def test_remapped_wrong_length(self):
        mem = FeatureMemory.random(4, 64, rng=3)
        with pytest.raises(DimensionMismatchError):
            mem.remapped(np.array([0, 1]))

    def test_remapped_is_copy(self):
        mem = FeatureMemory.random(3, 64, rng=4)
        remapped = mem.remapped(np.array([0, 1, 2]))
        remapped.matrix[0, 0] *= -1
        assert remapped.matrix[0, 0] != mem.matrix[0, 0]


class TestLevelMemory:
    def test_random_shape(self):
        mem = LevelMemory.random(8, 512, rng=0)
        assert mem.levels == 8
        assert mem.dim == 512

    def test_minimum_maximum(self):
        mem = LevelMemory.random(6, 512, rng=1)
        np.testing.assert_array_equal(mem.minimum, mem.matrix[0])
        np.testing.assert_array_equal(mem.maximum, mem.matrix[-1])

    def test_extremes_far_apart(self):
        mem = LevelMemory.random(8, 2048, rng=2)
        assert float(hamming(mem.minimum, mem.maximum)) == pytest.approx(0.5, abs=0.02)

    def test_needs_two_levels(self):
        with pytest.raises(ConfigurationError):
            LevelMemory(np.ones((1, 64), dtype=np.int8))

    def test_vector(self):
        mem = LevelMemory.random(5, 128, rng=3)
        np.testing.assert_array_equal(mem.vector(2), mem.matrix[2])

    def test_remapped_roundtrip(self):
        mem = LevelMemory.random(4, 128, rng=4)
        perm = np.array([3, 2, 1, 0])
        double = mem.remapped(perm).remapped(perm)
        np.testing.assert_array_equal(double.matrix, mem.matrix)
