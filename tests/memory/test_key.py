"""Tests for HDLock key containers and serialization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KeyFormatError
from repro.memory.key import LockKey, SubKey


class TestSubKey:
    def test_pairs(self):
        sk = SubKey((1, 2), (10, 20))
        assert list(sk.pairs()) == [(1, 10), (2, 20)]
        assert sk.layers == 2

    def test_length_mismatch(self):
        with pytest.raises(KeyFormatError):
            SubKey((1, 2), (10,))

    def test_empty_rejected(self):
        with pytest.raises(KeyFormatError):
            SubKey((), ())


class TestLockKey:
    def make_key(self) -> LockKey:
        return LockKey(
            [SubKey((0, 3), (5, 9)), SubKey((2, 1), (0, 7))],
            pool_size=4,
            dim=16,
        )

    def test_properties(self):
        key = self.make_key()
        assert key.n_features == 2
        assert key.layers == 2
        assert key.pool_size == 4
        assert key.dim == 16

    def test_empty_rejected(self):
        with pytest.raises(KeyFormatError):
            LockKey([], pool_size=4, dim=16)

    def test_mixed_layer_counts_rejected(self):
        with pytest.raises(KeyFormatError):
            LockKey(
                [SubKey((0,), (1,)), SubKey((0, 1), (1, 2))],
                pool_size=4,
                dim=16,
            )

    def test_index_out_of_pool(self):
        with pytest.raises(KeyFormatError):
            LockKey([SubKey((4,), (0,))], pool_size=4, dim=16)

    def test_rotation_out_of_dim(self):
        with pytest.raises(KeyFormatError):
            LockKey([SubKey((0,), (16,))], pool_size=4, dim=16)

    def test_to_from_arrays_roundtrip(self):
        key = self.make_key()
        idx, rot = key.to_arrays()
        rebuilt = LockKey.from_arrays(idx, rot, key.pool_size, key.dim)
        assert rebuilt == key

    def test_from_arrays_shape_check(self):
        with pytest.raises(KeyFormatError):
            LockKey.from_arrays(
                np.zeros((2, 2)), np.zeros((2, 3)), pool_size=4, dim=16
            )

    def test_json_roundtrip(self):
        key = self.make_key()
        assert LockKey.from_json(key.to_json()) == key

    def test_json_malformed(self):
        with pytest.raises(KeyFormatError):
            LockKey.from_json("{not json")

    def test_json_missing_field(self):
        with pytest.raises(KeyFormatError):
            LockKey.from_json('{"pool_size": 4}')

    def test_storage_bits(self):
        # P=4 -> 2 bits, D=16 -> 4 bits, N=2, L=2 -> 2*2*(2+4)=24
        assert self.make_key().storage_bits() == 24

    def test_equality(self):
        assert self.make_key() == self.make_key()
        other = LockKey([SubKey((0,), (0,))], pool_size=4, dim=16)
        assert self.make_key() != other
        assert self.make_key() != "not a key"

    def test_repr_mentions_shape(self):
        text = repr(self.make_key())
        assert "n_features=2" in text and "layers=2" in text

    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=20, deadline=None)
    def test_random_keys_roundtrip_json(self, n_features, layers):
        rng = np.random.default_rng(n_features * 10 + layers)
        idx = rng.integers(0, 8, size=(n_features, layers))
        rot = rng.integers(0, 32, size=(n_features, layers))
        key = LockKey.from_arrays(idx, rot, pool_size=8, dim=32)
        assert LockKey.from_json(key.to_json()) == key
