"""Tests for HDLock key containers and serialization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KeyFormatError
from repro.memory.key import KeyBatch, LockKey, SubKey, storage_bits_per_key


class TestSubKey:
    def test_pairs(self):
        sk = SubKey((1, 2), (10, 20))
        assert list(sk.pairs()) == [(1, 10), (2, 20)]
        assert sk.layers == 2

    def test_length_mismatch(self):
        with pytest.raises(KeyFormatError):
            SubKey((1, 2), (10,))

    def test_empty_rejected(self):
        with pytest.raises(KeyFormatError):
            SubKey((), ())


class TestLockKey:
    def make_key(self) -> LockKey:
        return LockKey(
            [SubKey((0, 3), (5, 9)), SubKey((2, 1), (0, 7))],
            pool_size=4,
            dim=16,
        )

    def test_properties(self):
        key = self.make_key()
        assert key.n_features == 2
        assert key.layers == 2
        assert key.pool_size == 4
        assert key.dim == 16

    def test_empty_rejected(self):
        with pytest.raises(KeyFormatError):
            LockKey([], pool_size=4, dim=16)

    def test_mixed_layer_counts_rejected(self):
        with pytest.raises(KeyFormatError):
            LockKey(
                [SubKey((0,), (1,)), SubKey((0, 1), (1, 2))],
                pool_size=4,
                dim=16,
            )

    def test_index_out_of_pool(self):
        with pytest.raises(KeyFormatError):
            LockKey([SubKey((4,), (0,))], pool_size=4, dim=16)

    def test_rotation_out_of_dim(self):
        with pytest.raises(KeyFormatError):
            LockKey([SubKey((0,), (16,))], pool_size=4, dim=16)

    def test_to_from_arrays_roundtrip(self):
        key = self.make_key()
        idx, rot = key.to_arrays()
        rebuilt = LockKey.from_arrays(idx, rot, key.pool_size, key.dim)
        assert rebuilt == key

    def test_from_arrays_shape_check(self):
        with pytest.raises(KeyFormatError):
            LockKey.from_arrays(
                np.zeros((2, 2)), np.zeros((2, 3)), pool_size=4, dim=16
            )

    def test_json_roundtrip(self):
        key = self.make_key()
        assert LockKey.from_json(key.to_json()) == key

    def test_json_malformed(self):
        with pytest.raises(KeyFormatError):
            LockKey.from_json("{not json")

    def test_json_missing_field(self):
        with pytest.raises(KeyFormatError):
            LockKey.from_json('{"pool_size": 4}')

    def test_storage_bits(self):
        # P=4 -> 2 bits, D=16 -> 4 bits, N=2, L=2 -> 2*2*(2+4)=24
        assert self.make_key().storage_bits() == 24

    def test_equality(self):
        assert self.make_key() == self.make_key()
        other = LockKey([SubKey((0,), (0,))], pool_size=4, dim=16)
        assert self.make_key() != other
        assert self.make_key() != "not a key"

    def test_repr_mentions_shape(self):
        text = repr(self.make_key())
        assert "n_features=2" in text and "layers=2" in text

    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=20, deadline=None)
    def test_random_keys_roundtrip_json(self, n_features, layers):
        rng = np.random.default_rng(n_features * 10 + layers)
        idx = rng.integers(0, 8, size=(n_features, layers))
        rot = rng.integers(0, 32, size=(n_features, layers))
        key = LockKey.from_arrays(idx, rot, pool_size=8, dim=32)
        assert LockKey.from_json(key.to_json()) == key


class TestZeroCopyPaths:
    def test_from_arrays_adopts_without_copy(self):
        idx = np.array([[0, 3], [2, 1]], dtype=np.int64)
        rot = np.array([[5, 9], [0, 7]], dtype=np.int64)
        key = LockKey.from_arrays(idx, rot, pool_size=4, dim=16)
        out_idx, out_rot = key.to_arrays()
        assert out_idx.base is idx and out_rot.base is rot

    def test_to_arrays_views_are_readonly(self):
        key = LockKey.from_arrays(
            np.array([[1]]), np.array([[2]]), pool_size=4, dim=16
        )
        idx, rot = key.to_arrays()
        with pytest.raises(ValueError):
            idx[0, 0] = 3
        with pytest.raises(ValueError):
            rot[0, 0] = 3

    def test_from_arrays_defers_subkey_materialization(self):
        key = LockKey.from_arrays(
            np.array([[1]]), np.array([[2]]), pool_size=4, dim=16
        )
        assert key._subkeys is None
        assert key.subkeys == (SubKey((1,), (2,)),)
        assert key._subkeys is not None  # cached after first access

    def test_from_arrays_range_validation(self):
        with pytest.raises(KeyFormatError, match="outside"):
            LockKey.from_arrays(
                np.array([[4]]), np.array([[0]]), pool_size=4, dim=16
            )
        with pytest.raises(KeyFormatError, match="outside"):
            LockKey.from_arrays(
                np.array([[0]]), np.array([[16]]), pool_size=4, dim=16
            )


class TestStorageBitsPerKey:
    def test_matches_lockkey_method(self):
        assert storage_bits_per_key(2, 2, 4, 16) == 24

    def test_degenerate_pools_still_cost_one_bit(self):
        # P=1 or D=1 carry no information but occupy one packed bit each
        assert storage_bits_per_key(3, 1, 1, 1) == 3 * 1 * (1 + 1)


class TestKeyBatch:
    def make_batch(self, n_devices=3) -> KeyBatch:
        rng = np.random.default_rng(0)
        idx = rng.integers(0, 4, size=(n_devices, 2, 2))
        rot = rng.integers(0, 16, size=(n_devices, 2, 2))
        return KeyBatch(idx, rot, pool_size=4, dim=16)

    def test_shape_metadata(self):
        batch = self.make_batch()
        assert len(batch) == 3
        assert batch.n_devices == 3
        assert batch.n_features == 2
        assert batch.layers == 2

    def test_key_accessor_is_zero_copy(self):
        batch = self.make_batch()
        key = batch.key(1)
        idx, _ = key.to_arrays()
        assert idx.base is batch.indices.base

    def test_key_accessor_matches_arrays(self):
        batch = self.make_batch()
        key = batch.key(2)
        idx, rot = key.to_arrays()
        np.testing.assert_array_equal(idx, batch.indices[2])
        np.testing.assert_array_equal(rot, batch.rotations[2])

    def test_iteration_yields_every_device(self):
        batch = self.make_batch()
        keys = list(batch)
        assert len(keys) == 3
        assert all(k.pool_size == 4 and k.dim == 16 for k in keys)

    def test_out_of_range_device(self):
        batch = self.make_batch()
        with pytest.raises(KeyFormatError):
            batch.key(3)
        with pytest.raises(KeyFormatError):
            batch.key(-1)

    def test_storage_bits_scales_with_devices(self):
        batch = self.make_batch()
        assert batch.storage_bits() == 3 * storage_bits_per_key(2, 2, 4, 16)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(KeyFormatError, match="shape"):
            KeyBatch(
                np.zeros((2, 2, 2), dtype=np.int64),
                np.zeros((2, 2, 3), dtype=np.int64),
                pool_size=4,
                dim=16,
            )

    def test_wrong_ndim_rejected(self):
        with pytest.raises(KeyFormatError, match="shape"):
            KeyBatch(
                np.zeros((2, 2), dtype=np.int64),
                np.zeros((2, 2), dtype=np.int64),
                pool_size=4,
                dim=16,
            )

    def test_empty_batch_rejected(self):
        with pytest.raises(KeyFormatError, match=">= 1"):
            KeyBatch(
                np.zeros((0, 2, 2), dtype=np.int64),
                np.zeros((0, 2, 2), dtype=np.int64),
                pool_size=4,
                dim=16,
            )

    def test_out_of_range_entries_rejected(self):
        idx = np.zeros((1, 1, 1), dtype=np.int64)
        rot = np.full((1, 1, 1), 16, dtype=np.int64)
        with pytest.raises(KeyFormatError, match="ranges"):
            KeyBatch(idx, rot, pool_size=4, dim=16)

    def test_arrays_are_readonly(self):
        batch = self.make_batch()
        with pytest.raises(ValueError):
            batch.indices[0, 0, 0] = 1

    def test_repr_mentions_fleet_shape(self):
        text = repr(self.make_batch())
        assert "n_devices=3" in text and "layers=2" in text
