"""Tests for the public/secure memory threat-model simulation."""

import numpy as np
import pytest

from repro.errors import SecureMemoryError
from repro.hv.random import random_pool
from repro.memory.key import LockKey, SubKey
from repro.memory.secure import OWNER, PublicMemory, SecureMemory


class TestPublicMemory:
    def test_publish_shuffles_consistently(self):
        rows = random_pool(20, 64, rng=0)
        public, placement = PublicMemory.publish(rows, rng=1)
        np.testing.assert_array_equal(public.rows, rows[placement])

    def test_len_and_dim(self):
        public, _ = PublicMemory.publish(random_pool(7, 96, rng=2), rng=3)
        assert len(public) == 7
        assert public.dim == 96

    def test_row_access(self):
        rows = random_pool(4, 64, rng=4)
        public = PublicMemory(rows)
        np.testing.assert_array_equal(public.row(2), rows[2])

    def test_packed_footprint(self):
        public = PublicMemory(random_pool(10, 800, rng=5))
        assert public.nbytes_packed == 10 * 100

    def test_requires_matrix(self):
        with pytest.raises(ValueError):
            PublicMemory(np.ones(16, dtype=np.int8))

    def test_publish_does_not_mutate_original(self):
        rows = random_pool(6, 64, rng=6)
        copy = rows.copy()
        PublicMemory.publish(rows, rng=7)
        np.testing.assert_array_equal(rows, copy)


class TestSecureMemory:
    def test_owner_roundtrip(self):
        secure = SecureMemory()
        secure.store("mapping", np.array([2, 0, 1]))
        np.testing.assert_array_equal(
            secure.load("mapping"), np.array([2, 0, 1])
        )

    def test_attacker_access_denied_and_logged(self):
        secure = SecureMemory()
        secure.store("key", 123)
        with pytest.raises(SecureMemoryError):
            secure.load("key", actor="attacker")
        assert len(secure.audit_log) == 1
        record = secure.audit_log[0]
        assert record.actor == "attacker"
        assert not record.allowed

    def test_missing_slot(self):
        secure = SecureMemory()
        with pytest.raises(SecureMemoryError):
            secure.load("nothing")

    def test_contains_and_names(self):
        secure = SecureMemory()
        secure.store("b", 1)
        secure.store("a", 2)
        assert "a" in secure and "c" not in secure
        assert secure.names == ["a", "b"]

    def test_owner_access_logged_as_allowed(self):
        secure = SecureMemory()
        secure.store("x", 5)
        secure.load("x", actor=OWNER)
        assert secure.audit_log[-1].allowed

    def test_storage_bits_int(self):
        secure = SecureMemory()
        secure.store("n", 255)
        assert secure.storage_bits() == 8

    def test_storage_bits_array(self):
        secure = SecureMemory()
        secure.store("placement", np.arange(16))  # values 0..15 -> 4 bits
        assert secure.storage_bits() == 16 * 4

    def test_storage_bits_lock_key(self):
        key = LockKey([SubKey((0, 1), (2, 3))], pool_size=16, dim=256)
        secure = SecureMemory()
        secure.store("key", key)
        assert secure.storage_bits() == key.storage_bits()

    def test_storage_bits_unknown_type(self):
        secure = SecureMemory()
        secure.store("weird", object())
        with pytest.raises(TypeError):
            secure.storage_bits()


class TestPackedFootprintCaching:
    def test_nbytes_packed_computed_once(self):
        public = PublicMemory(random_pool(10, 800, rng=7))
        first = public.nbytes_packed
        assert public.nbytes_packed is first  # cached int, not recomputed
        assert first == 10 * 100
