"""Tests for the HDC classifier."""

import numpy as np
import pytest

from repro.encoding.record import RecordEncoder
from repro.errors import ConfigurationError, DimensionMismatchError
from repro.model.classifier import HDClassifier

N, M, D, C = 30, 6, 1024, 3


@pytest.fixture
def encoder() -> RecordEncoder:
    return RecordEncoder.random(N, M, D, rng=0)


def make_separable(rng: np.random.Generator, per_class: int = 20):
    """Three well-separated level prototypes with small jitter."""
    prototypes = np.array(
        [np.full(N, 0), np.full(N, M // 2), np.full(N, M - 1)]
    )
    samples, labels = [], []
    for cls in range(C):
        jitter = rng.integers(-1, 2, size=(per_class, N))
        samples.append(np.clip(prototypes[cls] + jitter, 0, M - 1))
        labels.append(np.full(per_class, cls))
    return np.vstack(samples), np.concatenate(labels)


class TestFitPredict:
    @pytest.mark.parametrize("binary", [True, False])
    def test_learns_separable_data(self, encoder, rng, binary):
        x, y = make_separable(rng)
        model = HDClassifier(encoder, C, binary=binary, rng=1).fit(x, y)
        assert model.score(x, y) == 1.0

    @pytest.mark.parametrize("binary", [True, False])
    def test_generalizes(self, encoder, rng, binary):
        x, y = make_separable(rng)
        test_x, test_y = make_separable(rng)
        model = HDClassifier(encoder, C, binary=binary, rng=2).fit(x, y)
        assert model.score(test_x, test_y) >= 0.9

    def test_predict_shape(self, encoder, rng):
        x, y = make_separable(rng)
        model = HDClassifier(encoder, C, rng=3).fit(x, y)
        assert model.predict(x[:7]).shape == (7,)

    def test_class_matrix_shapes(self, encoder, rng):
        x, y = make_separable(rng)
        binary = HDClassifier(encoder, C, binary=True, rng=4).fit(x, y)
        nonbinary = HDClassifier(encoder, C, binary=False, rng=5).fit(x, y)
        assert binary.class_matrix.shape == (C, D)
        assert set(np.unique(binary.class_matrix)).issubset({-1, 1})
        assert nonbinary.class_matrix.dtype == np.float64

    def test_untrained_raises(self, encoder):
        model = HDClassifier(encoder, C)
        with pytest.raises(ConfigurationError):
            _ = model.class_matrix
        with pytest.raises(ConfigurationError):
            model.predict(np.zeros((1, N), dtype=np.int64))


class TestRetrain:
    def test_improves_or_holds_train_accuracy(self, encoder, rng):
        x, y = make_separable(rng)
        # corrupt a few labels so one-shot is imperfect
        y_noisy = y.copy()
        y_noisy[:4] = (y_noisy[:4] + 1) % C
        model = HDClassifier(encoder, C, binary=True, rng=6).fit(x, y_noisy)
        history = model.retrain(x, y_noisy, epochs=3)
        assert len(history) == 3

    def test_requires_fit_first(self, encoder, rng):
        x, y = make_separable(rng)
        model = HDClassifier(encoder, C)
        with pytest.raises(ConfigurationError):
            model.retrain(x, y)

    def test_zero_epochs_noop(self, encoder, rng):
        x, y = make_separable(rng)
        model = HDClassifier(encoder, C, rng=7).fit(x, y)
        before = model.class_matrix.copy()
        assert model.retrain(x, y, epochs=0) == []
        np.testing.assert_array_equal(model.class_matrix, before)

    def test_negative_epochs(self, encoder, rng):
        x, y = make_separable(rng)
        model = HDClassifier(encoder, C, rng=8).fit(x, y)
        with pytest.raises(ConfigurationError):
            model.retrain(x, y, epochs=-1)

    def test_encoded_reuse_matches(self, encoder, rng):
        x, y = make_separable(rng)
        m1 = HDClassifier(encoder, C, binary=False, rng=9).fit(x, y)
        encoded = m1.encode_training(x)
        m2 = HDClassifier(encoder, C, binary=False, rng=9).fit(
            x, y, encoded=encoded
        )
        np.testing.assert_array_equal(m1.class_matrix, m2.class_matrix)


class TestSimilarityProfile:
    def test_highest_for_true_class(self, encoder, rng):
        x, y = make_separable(rng)
        model = HDClassifier(encoder, C, binary=False, rng=10).fit(x, y)
        profile = model.similarity_profile(x[0])
        assert profile.shape == (C,)
        assert int(np.argmax(profile)) == y[0]

    def test_binary_profile_in_unit_range(self, encoder, rng):
        x, y = make_separable(rng)
        model = HDClassifier(encoder, C, binary=True, rng=11).fit(x, y)
        profile = model.similarity_profile(x[0])
        assert (profile >= 0).all() and (profile <= 1).all()


class TestValidation:
    def test_too_few_classes(self, encoder):
        with pytest.raises(ConfigurationError):
            HDClassifier(encoder, 1)

    def test_label_shape_mismatch(self, encoder, rng):
        x, _ = make_separable(rng)
        model = HDClassifier(encoder, C)
        with pytest.raises(DimensionMismatchError):
            model.fit(x, np.zeros(3, dtype=np.int64))

    def test_label_out_of_range(self, encoder, rng):
        x, y = make_separable(rng)
        with pytest.raises(ConfigurationError):
            HDClassifier(encoder, C).fit(x, y + C)


class TestTrainedStateRoundTrip:
    """Export/restore of the trained class memory (serving provisioning)."""

    def test_accumulators_round_trip_binary(self, encoder, rng):
        x, y = make_separable(rng)
        model = HDClassifier(encoder, C, binary=True, rng=12).fit(x, y)
        restored = HDClassifier(encoder, C, binary=True, rng=99)
        restored.load_accumulators(
            model.class_accumulators, binary_classes=model.class_matrix
        )
        np.testing.assert_array_equal(
            restored.class_matrix, model.class_matrix
        )
        np.testing.assert_array_equal(restored.predict(x), model.predict(x))

    def test_accumulators_round_trip_nonbinary(self, encoder, rng):
        x, y = make_separable(rng)
        model = HDClassifier(encoder, C, binary=False, rng=13).fit(x, y)
        restored = HDClassifier(encoder, C, binary=False)
        restored.load_accumulators(model.class_accumulators)
        np.testing.assert_array_equal(restored.predict(x), model.predict(x))

    def test_accumulators_are_a_copy(self, encoder, rng):
        x, y = make_separable(rng)
        model = HDClassifier(encoder, C, rng=14).fit(x, y)
        exported = model.class_accumulators
        exported[:] = 0.0
        assert model.class_accumulators.any()

    def test_untrained_export_raises(self, encoder):
        with pytest.raises(ConfigurationError):
            _ = HDClassifier(encoder, C).class_accumulators

    def test_wrong_shape_refused(self, encoder):
        model = HDClassifier(encoder, C)
        with pytest.raises(DimensionMismatchError):
            model.load_accumulators(np.zeros((C, D + 1)))
        with pytest.raises(DimensionMismatchError):
            model.load_accumulators(
                np.zeros((C, D)), binary_classes=np.ones((C + 1, D))
            )

    def test_binary_snapshot_refused_on_nonbinary_model(self, encoder):
        model = HDClassifier(encoder, C, binary=False)
        with pytest.raises(ConfigurationError):
            model.load_accumulators(
                np.zeros((C, D)), binary_classes=np.ones((C, D))
            )
