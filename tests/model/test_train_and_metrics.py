"""Tests for the training entry point and the metrics helpers."""

import numpy as np
import pytest

from repro.encoding.record import RecordEncoder
from repro.errors import DimensionMismatchError
from repro.model.metrics import accuracy, confusion_matrix, per_class_recall
from repro.model.train import train_model


class TestTrainModel:
    def test_returns_fitted_model(self, tiny_dataset):
        encoder = RecordEncoder.random(
            tiny_dataset.n_features, tiny_dataset.levels, 1024, rng=0
        )
        result = train_model(
            encoder,
            tiny_dataset.train_x,
            tiny_dataset.train_y,
            tiny_dataset.n_classes,
            binary=True,
            retrain_epochs=2,
            rng=1,
        )
        assert len(result.history) == 2
        assert 0.0 <= result.train_accuracy <= 1.0
        assert result.model.score(tiny_dataset.test_x, tiny_dataset.test_y) > 0.8

    def test_zero_epochs_still_scores(self, tiny_dataset):
        encoder = RecordEncoder.random(
            tiny_dataset.n_features, tiny_dataset.levels, 1024, rng=2
        )
        result = train_model(
            encoder,
            tiny_dataset.train_x,
            tiny_dataset.train_y,
            tiny_dataset.n_classes,
            retrain_epochs=0,
            rng=3,
        )
        assert result.history == ()
        assert result.train_accuracy > 0.5

    @pytest.mark.parametrize("binary", [True, False])
    def test_both_flavors_learn(self, tiny_dataset, binary):
        encoder = RecordEncoder.random(
            tiny_dataset.n_features, tiny_dataset.levels, 1024, rng=4
        )
        result = train_model(
            encoder,
            tiny_dataset.train_x,
            tiny_dataset.train_y,
            tiny_dataset.n_classes,
            binary=binary,
            rng=5,
        )
        assert result.model.score(tiny_dataset.test_x, tiny_dataset.test_y) > 0.8


class TestAccuracy:
    def test_perfect(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 2, 3])) == 1.0

    def test_partial(self):
        assert accuracy(np.array([1, 2, 3, 4]), np.array([1, 2, 0, 0])) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            accuracy(np.array([1]), np.array([1, 2]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))


class TestConfusionMatrix:
    def test_known_counts(self):
        labels = np.array([0, 0, 1, 1, 2])
        preds = np.array([0, 1, 1, 1, 0])
        conf = confusion_matrix(preds, labels, 3)
        assert conf[0, 0] == 1 and conf[0, 1] == 1
        assert conf[1, 1] == 2
        assert conf[2, 0] == 1
        assert conf.sum() == 5

    def test_recall(self):
        conf = np.array([[3, 1], [0, 4]])
        np.testing.assert_allclose(per_class_recall(conf), [0.75, 1.0])

    def test_recall_empty_class(self):
        conf = np.array([[2, 0], [0, 0]])
        np.testing.assert_allclose(per_class_recall(conf), [1.0, 0.0])

    def test_shape_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            confusion_matrix(np.array([0]), np.array([0, 1]), 2)
