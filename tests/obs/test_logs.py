"""Structured JSON logging: silent default, one JSON object per line."""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.obs import logs
from repro.obs.trace import reset_request_id, set_request_id


@pytest.fixture(autouse=True)
def silent_after() -> None:
    yield
    logs.reset()


def configure_buffer(level: int | str = logging.INFO) -> io.StringIO:
    stream = io.StringIO()
    logs.configure(stream=stream, level=level)
    return stream


class TestSilentDefault:
    def test_library_logger_does_not_propagate(self):
        root = logging.getLogger("repro")
        assert root.propagate is False
        assert any(
            isinstance(h, logging.NullHandler) for h in root.handlers
        )

    def test_no_output_without_configure(self, capsys):
        logs.get_logger("repro.serving").warning("should vanish")
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == ""


class TestConfigure:
    def test_one_json_object_per_line(self):
        stream = configure_buffer()
        log = logs.get_logger("repro.serving")
        log.info("lane ready", extra={"fields": {"tenant": "alpha"}})
        log.info("second line")
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["message"] == "lane ready"
        assert first["logger"] == "repro.serving"
        assert first["level"] == "INFO"
        assert first["tenant"] == "alpha"
        assert first["ts"] > 0

    def test_request_id_attached_from_context(self):
        stream = configure_buffer()
        token = set_request_id("req-log-1")
        try:
            logs.get_logger("repro.serving").info("in request")
        finally:
            reset_request_id(token)
        logs.get_logger("repro.serving").info("outside request")
        in_req, out_req = [
            json.loads(line)
            for line in stream.getvalue().strip().splitlines()
        ]
        assert in_req["request_id"] == "req-log-1"
        assert "request_id" not in out_req

    def test_reconfigure_replaces_handler(self):
        first = configure_buffer()
        second = configure_buffer()
        logs.get_logger("repro").info("once")
        assert first.getvalue() == ""
        assert len(second.getvalue().strip().splitlines()) == 1

    def test_exception_info_is_structured(self):
        stream = configure_buffer()
        try:
            raise ValueError("boom")
        except ValueError:
            logs.get_logger("repro").exception("failed")
        record = json.loads(stream.getvalue())
        assert record["exc_type"] == "ValueError"
        assert "boom" in record["exc"]

    def test_get_logger_prefixes_foreign_names(self):
        assert logs.get_logger("serving").name == "repro.serving"
        assert logs.get_logger("repro.hv").name == "repro.hv"

    def test_reset_restores_silence(self, capsys):
        configure_buffer()
        logs.reset()
        logs.get_logger("repro").info("after reset")
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == ""
