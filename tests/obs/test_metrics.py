"""MetricsRegistry: instruments, exposition format, determinism."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry, NullMetrics


@pytest.fixture
def reg() -> MetricsRegistry:
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_add(self, reg):
        c = reg.counter("repro_x_total", "X.", labels=("t",))
        c.inc(t="a")
        c.add(4, t="a")
        c.inc(t="b")
        assert c.value(t="a") == 5
        assert c.value(t="b") == 1

    def test_label_mismatch_is_config_error(self, reg):
        c = reg.counter("repro_x_total", "X.", labels=("t",))
        with pytest.raises(ConfigurationError):
            c.inc(wrong="a")
        with pytest.raises(ConfigurationError):
            c.inc()

    def test_bound_child_is_the_same_series(self, reg):
        c = reg.counter("repro_x_total", "X.", labels=("t",))
        child = c.bind(t="a")
        child.inc()
        child.add(2)
        assert c.value(t="a") == 3


class TestRegistry:
    def test_reregistration_is_idempotent(self, reg):
        a = reg.counter("repro_x_total", "X.", labels=("t",))
        b = reg.counter("repro_x_total", "X.", labels=("t",))
        assert a is b

    def test_kind_conflict_raises(self, reg):
        reg.counter("repro_x_total", "X.", labels=("t",))
        with pytest.raises(ConfigurationError):
            reg.gauge("repro_x_total", "X.", labels=("t",))

    def test_label_conflict_raises(self, reg):
        reg.counter("repro_x_total", "X.", labels=("t",))
        with pytest.raises(ConfigurationError):
            reg.counter("repro_x_total", "X.", labels=("u",))

    def test_bucket_conflict_raises(self, reg):
        reg.histogram("repro_h", "H.", buckets=(1.0, 2.0))
        with pytest.raises(ConfigurationError):
            reg.histogram("repro_h", "H.", buckets=(1.0, 3.0))

    def test_empty_buckets_raise(self, reg):
        with pytest.raises(ConfigurationError):
            reg.histogram("repro_h", "H.", buckets=())

    def test_thread_safety_of_counts(self, reg):
        c = reg.counter("repro_x_total", "X.", labels=("t",))
        child = c.bind(t="a")

        def spin():
            for _ in range(1000):
                child.inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value(t="a") == 8000


class TestHistogramBuckets:
    """Bucket-edge semantics: Prometheus ``le`` is less-or-equal."""

    def test_exact_boundary_lands_in_its_bucket(self, reg):
        h = reg.histogram("repro_h", "H.", buckets=(1.0, 2.0, 4.0))
        h.observe(2.0)
        snap = reg.snapshot()["repro_h"]["samples"][0]
        assert snap["buckets"] == {"1": 0, "2": 1, "4": 1, "+Inf": 1}

    def test_overflow_goes_to_inf_only(self, reg):
        h = reg.histogram("repro_h", "H.", buckets=(1.0, 2.0))
        h.observe(99.0)
        snap = reg.snapshot()["repro_h"]["samples"][0]
        assert snap["buckets"] == {"1": 0, "2": 0, "+Inf": 1}
        assert snap["count"] == 1
        assert snap["sum"] == 99.0

    def test_below_first_bound(self, reg):
        h = reg.histogram("repro_h", "H.", buckets=(1.0, 2.0))
        h.observe(0.5)
        snap = reg.snapshot()["repro_h"]["samples"][0]
        assert snap["buckets"] == {"1": 1, "2": 1, "+Inf": 1}

    def test_bounds_are_sorted_on_construction(self, reg):
        h = reg.histogram("repro_h", "H.", buckets=(4.0, 1.0, 2.0))
        assert h.buckets == (1.0, 2.0, 4.0)


class TestExposition:
    """Golden test: the /metrics body, byte for byte."""

    def test_golden_render(self, reg):
        c = reg.counter(
            "repro_requests_total", "Total requests.", labels=("tenant", "op")
        )
        c.add(3, tenant="alpha", op="encode")
        c.inc(tenant="beta", op="classify")
        g = reg.gauge("repro_tenants", "Registered tenants.")
        g.set(2)
        h = reg.histogram(
            "repro_latency_seconds",
            "Latency.",
            labels=("tenant",),
            buckets=(0.001, 0.01),
        )
        h.observe(0.01, tenant="alpha")
        h.observe(5.0, tenant="alpha")
        expected = "\n".join(
            [
                "# HELP repro_latency_seconds Latency.",
                "# TYPE repro_latency_seconds histogram",
                'repro_latency_seconds_bucket{tenant="alpha",le="0.001"} 0',
                'repro_latency_seconds_bucket{tenant="alpha",le="0.01"} 1',
                'repro_latency_seconds_bucket{tenant="alpha",le="+Inf"} 2',
                'repro_latency_seconds_sum{tenant="alpha"} 5.01',
                'repro_latency_seconds_count{tenant="alpha"} 2',
                "# HELP repro_requests_total Total requests.",
                "# TYPE repro_requests_total counter",
                'repro_requests_total{tenant="alpha",op="encode"} 3',
                'repro_requests_total{tenant="beta",op="classify"} 1',
                "# HELP repro_tenants Registered tenants.",
                "# TYPE repro_tenants gauge",
                "repro_tenants 2",
            ]
        ) + "\n"
        assert reg.render_prometheus() == expected

    def test_render_is_deterministic_under_insertion_order(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        ca = a.counter("repro_z_total", "Z.", labels=("t",))
        a.counter("repro_a_total", "A.", labels=("t",)).inc(t="x")
        ca.inc(t="b")
        ca.inc(t="a")
        cb = b.counter("repro_a_total", "A.", labels=("t",))
        b.counter("repro_z_total", "Z.", labels=("t",)).bind(t="a").inc()
        b.counter("repro_z_total", "Z.", labels=("t",)).bind(t="b").inc()
        cb.inc(t="x")
        assert a.render_prometheus() == b.render_prometheus()

    def test_label_values_are_escaped(self, reg):
        c = reg.counter("repro_x_total", "X.", labels=("t",))
        c.inc(t='we"ird\\name\nline')
        rendered = reg.render_prometheus()
        assert 't="we\\"ird\\\\name\\nline"' in rendered

    def test_empty_registry_renders_empty(self, reg):
        assert reg.render_prometheus() == ""


class TestNullMetrics:
    def test_same_surface_all_noop(self):
        null = NullMetrics()
        assert null.enabled is False
        null.counter("x", "y", labels=("t",)).inc(t="a")
        null.gauge("x", "y").set(1)
        null.histogram("x", "y").observe(2)
        null.histogram("x", "y").bind(t="a").observe(2)
        assert null.render_prometheus() == ""
        assert null.snapshot() == {}
