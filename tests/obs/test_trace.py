"""Tracing: request IDs, contextvar propagation, span nesting."""

from __future__ import annotations

import asyncio
import pickle

from repro.obs.trace import (
    SpanRecorder,
    current_request_id,
    new_request_id,
    reset_request_id,
    sanitize_request_id,
    set_request_id,
    span,
)


class TestRequestIds:
    def test_ids_are_process_unique(self):
        ids = {new_request_id() for _ in range(100)}
        assert len(ids) == 100
        assert all(i.startswith("req-") for i in ids)

    def test_sanitize_accepts_safe_client_ids(self):
        assert sanitize_request_id("abc-123.X_y") == "abc-123.X_y"

    def test_sanitize_rejects_hostile_shapes(self):
        for bad in ("", "has space", "new\nline", "x" * 129, None):
            fresh = sanitize_request_id(bad)
            assert fresh != bad
            assert fresh.startswith("req-")

    def test_contextvar_set_and_reset(self):
        assert current_request_id() is None
        token = set_request_id("req-test-1")
        assert current_request_id() == "req-test-1"
        reset_request_id(token)
        assert current_request_id() is None

    def test_propagates_into_asyncio_tasks(self):
        async def child() -> str | None:
            await asyncio.sleep(0)
            return current_request_id()

        async def main() -> str | None:
            token = set_request_id("req-task-7")
            try:
                return await asyncio.create_task(child())
            finally:
                reset_request_id(token)

        assert asyncio.run(main()) == "req-task-7"


class TestSpans:
    def test_nested_spans_record_parents(self):
        rec = SpanRecorder()
        with span("outer", rec):
            with span("inner", rec):
                pass
        names = [(s["name"], s["parent"]) for s in rec.spans]
        # Children finish (and record) before their parents.
        assert names == [("inner", "outer"), ("outer", None)]
        assert all(s["elapsed_s"] >= 0 for s in rec.spans)

    def test_span_captures_request_id(self):
        rec = SpanRecorder()
        token = set_request_id("req-span-1")
        try:
            with span("work", rec):
                pass
        finally:
            reset_request_id(token)
        assert rec.spans[0]["request_id"] == "req-span-1"

    def test_none_recorder_is_noop(self):
        with span("ignored", None):
            pass  # nothing to assert beyond "does not blow up"

    def test_exception_still_records(self):
        rec = SpanRecorder()
        try:
            with span("failing", rec):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert [s["name"] for s in rec.spans] == ["failing"]

    def test_stack_unwinds_after_exception(self):
        rec = SpanRecorder()
        try:
            with span("failing", rec):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        with span("after", rec):
            pass
        assert rec.spans[-1]["parent"] is None

    def test_records_are_picklable(self):
        rec = SpanRecorder()
        with span("work", rec):
            pass
        assert pickle.loads(pickle.dumps(rec.spans)) == rec.spans

    def test_drain_hands_off_and_clears(self):
        rec = SpanRecorder()
        with span("work", rec):
            pass
        drained = rec.drain()
        assert [s["name"] for s in drained] == ["work"]
        assert rec.spans == []
