"""Serving fixtures: a provisioned tenant directory + loaded registries.

Parity-sensitive tests always compare *replicas* — tenants rebuilt via
``load_tenant`` with its deterministic tie-stream seed — never the
original in-memory system, whose tie RNG already advanced during
training.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.model.train import train_model
from repro.serving.registry import ModelRegistry, load_tenant, provision_tenant


@pytest.fixture
def provisioned(tmp_path, locked_system, tiny_dataset):
    """Provision the shared locked system + trained model to disk."""
    training = train_model(
        locked_system.encoder,
        tiny_dataset.train_x,
        tiny_dataset.train_y,
        n_classes=tiny_dataset.n_classes,
        binary=True,
        retrain_epochs=1,
        rng=7,
    )
    directory = tmp_path / "alpha"
    tenant = provision_tenant(directory, "alpha", locked_system, training.model)
    return SimpleNamespace(
        directory=directory, original=training.model, tenant=tenant
    )


@pytest.fixture
def tenant_dir(provisioned):
    return provisioned.directory


@pytest.fixture
def registry(tenant_dir):
    """A registry holding one freshly loaded replica of the tenant."""
    reg = ModelRegistry()
    reg.add(load_tenant(tenant_dir))
    return reg
