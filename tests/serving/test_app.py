"""Endpoint tests: happy paths, every error path, service-level parity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving.app import create_app
from repro.serving.registry import ModelRegistry, load_tenant
from repro.serving.schemas import hex_to_packed_row
from repro.serving.testclient import TestClient


@pytest.fixture
def client(registry):
    with TestClient(create_app(registry, max_wait_s=0.001)) as c:
        yield c


class TestHealthAndModels:
    def test_healthz(self, client):
        response = client.get("/healthz")
        assert response.status == 200
        body = response.json()
        assert body["status"] == "ok"
        assert body["tenants"] == 1

    def test_models_listing(self, client):
        response = client.get("/v1/models")
        assert response.status == 200
        (entry,) = response.json()["models"]
        assert entry["name"] == "alpha"
        assert entry["dim"] == 1024
        assert entry["n_features"] == 40
        assert entry["generation"] == 0
        assert entry["revoked"] is False

    def test_models_reports_batching_stats(self, client):
        probe = [1] * 40
        client.post("/v1/alpha/classify", json={"sample": probe})
        (entry,) = client.get("/v1/models").json()["models"]
        stats = entry["batch_stats"]["classify"]
        assert stats["requests"] == 1
        assert stats["batches"] == 1
        assert stats["rows"] == 1


class TestInference:
    def test_classify_single_and_batch(self, client, tiny_dataset):
        rows = tiny_dataset.test_x[:4].tolist()
        single = client.post("/v1/alpha/classify", json={"sample": rows[0]})
        assert single.status == 200
        assert len(single.json()["labels"]) == 1

        batch = client.post("/v1/alpha/classify", json={"samples": rows})
        assert batch.status == 200
        body = batch.json()
        assert body["tenant"] == "alpha"
        assert len(body["labels"]) == 4
        assert all(
            0 <= label < tiny_dataset.n_classes for label in body["labels"]
        )
        assert body["labels"][0] == single.json()["labels"][0]

    def test_classify_matches_direct_predict(
        self, client, tenant_dir, tiny_dataset
    ):
        rows = tiny_dataset.test_x[:6]
        via_api = client.post(
            "/v1/alpha/classify", json={"samples": rows.tolist()}
        ).json()["labels"]
        replica = load_tenant(tenant_dir)
        np.testing.assert_array_equal(via_api, replica.classifier.predict(rows))

    def test_encode_returns_exact_packed_rows(
        self, client, tenant_dir, tiny_dataset
    ):
        rows = tiny_dataset.test_x[:3]
        body = client.post(
            "/v1/alpha/encode", json={"samples": rows.tolist()}
        ).json()
        assert body["dim"] == 1024
        served = np.stack(
            [hex_to_packed_row(text) for text in body["packed_hex"]]
        )
        replica = load_tenant(tenant_dir)
        np.testing.assert_array_equal(
            served, replica.encoder.encode_batch_packed(rows)
        )


class TestServiceParity:
    """Micro-batched serving is bit-identical to per-request serving."""

    def test_batched_app_equals_unbatched_app(self, tenant_dir, tiny_dataset):
        rows = tiny_dataset.test_x[:8]

        def drive(max_batch: int, max_wait_s: float):
            registry = ModelRegistry()
            registry.add(load_tenant(tenant_dir))
            app = create_app(
                registry, max_batch=max_batch, max_wait_s=max_wait_s
            )
            encoded: list[str] = []
            labels: list[int] = []
            with TestClient(app) as client:
                for row in rows.tolist():
                    encoded.extend(
                        client.post(
                            "/v1/alpha/encode", json={"sample": row}
                        ).json()["packed_hex"]
                    )
                    labels.extend(
                        client.post(
                            "/v1/alpha/classify", json={"sample": row}
                        ).json()["labels"]
                    )
            return encoded, labels

        # max_batch=1 → every request is its own kernel call (the
        # per-request path); the batched app uses the default window.
        batched = drive(max_batch=64, max_wait_s=0.001)
        unbatched = drive(max_batch=1, max_wait_s=0.0)
        assert batched == unbatched


class TestErrorPaths:
    def test_unknown_tenant_404(self, client):
        response = client.post("/v1/ghost/classify", json={"sample": [1] * 40})
        assert response.status == 404
        body = response.json()
        assert body["error"] == "unknown_tenant"
        assert body["tenants"] == ["alpha"]

    def test_unknown_route_404(self, client):
        assert client.get("/v2/nothing").status == 404

    def test_wrong_method_405(self, client):
        assert client.get("/v1/alpha/classify").status == 405
        assert client.request("POST", "/healthz").status == 405

    def test_shape_mismatch_422(self, client):
        response = client.post("/v1/alpha/classify", json={"sample": [1, 2, 3]})
        assert response.status == 422
        body = response.json()
        assert body["error"] == "dimension_mismatch"
        assert "expects 40" in body["detail"]

    def test_out_of_range_levels_422(self, client):
        response = client.post(
            "/v1/alpha/classify", json={"sample": [999] * 40}
        )
        assert response.status == 422
        assert "level indices" in response.json()["detail"]

    def test_malformed_body_422(self, client):
        response = client.request("POST", "/v1/alpha/classify")
        assert response.status == 422
        response = client.post("/v1/alpha/classify", json={"wrong": 1})
        assert response.status == 422
        assert response.json()["error"] == "invalid_request"

    def test_revoked_key_403(self, registry):
        tenant = registry.get("alpha")
        with TestClient(create_app(registry, max_wait_s=0.001)) as client:
            tenant.store.revoke(tenant.device_id)
            response = client.post(
                "/v1/alpha/classify", json={"sample": [1] * 40}
            )
            assert response.status == 403
            body = response.json()
            assert body["error"] == "key_access_denied"
            assert body["reason"] == "revoked"
            assert body["generation"] == 0
            # /v1/models reflects the revocation instead of hiding it.
            (entry,) = client.get("/v1/models").json()["models"]
            assert entry["revoked"] is True

    def test_rotated_key_403_with_generation_info(self, registry):
        tenant = registry.get("alpha")
        with TestClient(create_app(registry, max_wait_s=0.001)) as client:
            tenant.store.rotate(tenant.device_id, rng=5)
            response = client.post(
                "/v1/alpha/encode", json={"sample": [1] * 40}
            )
            assert response.status == 403
            body = response.json()
            assert body["error"] == "key_access_denied"
            assert body["reason"] == "rotated"
            assert body["generation"] == 1
            assert body["provisioned_generation"] == 0
