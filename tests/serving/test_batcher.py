"""Micro-batcher unit tests: coalescing, determinism, shutdown flush.

The headline pins:

* batched execution is **bit-identical** to per-request execution in
  arrival order (the acceptance criterion of the serving PR);
* no submitted request can hang — lone requests flush on the timer,
  shutdown flushes the in-flight window (regression test for the
  mid-window hang).
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.serving.batcher import BatcherClosed, MicroBatcher
from repro.serving.registry import load_tenant


def run(coro):
    return asyncio.run(coro)


class RecordingRunner:
    """A run_batch double that records every stacked matrix it saw."""

    def __init__(self, fail: bool = False):
        self.calls: list[np.ndarray] = []
        self.fail = fail

    def __call__(self, rows: np.ndarray):
        self.calls.append(rows.copy())
        if self.fail:
            raise RuntimeError("kernel exploded")
        return rows * 10


class TestCoalescing:
    def test_concurrent_submits_share_one_batch(self):
        runner = RecordingRunner()
        batcher = MicroBatcher(runner, max_batch=64, max_wait_s=0.01)

        async def scenario():
            rows = [np.array([[i]]) for i in range(10)]
            return await asyncio.gather(
                *(batcher.submit(row) for row in rows)
            )

        results = run(scenario())
        assert len(runner.calls) == 1
        assert runner.calls[0].shape == (10, 1)
        for i, result in enumerate(results):
            np.testing.assert_array_equal(result, [[i * 10]])
        assert batcher.stats.batches == 1
        assert batcher.stats.requests == 10
        assert batcher.stats.largest_batch == 10

    def test_full_window_flushes_without_timer(self):
        runner = RecordingRunner()
        # A timer that would never fire inside the test: the only way
        # these requests resolve is the size trigger.
        batcher = MicroBatcher(runner, max_batch=4, max_wait_s=60.0)

        async def scenario():
            rows = [np.array([[i]]) for i in range(4)]
            return await asyncio.wait_for(
                asyncio.gather(*(batcher.submit(row) for row in rows)),
                timeout=5.0,
            )

        results = run(scenario())
        assert len(results) == 4
        assert len(runner.calls) == 1

    def test_chunked_submission_keeps_request_rows_together(self):
        runner = RecordingRunner()
        batcher = MicroBatcher(runner, max_batch=64, max_wait_s=0.01)

        async def scenario():
            chunk_a = np.array([[1], [2], [3]])
            chunk_b = np.array([[4], [5]])
            return await asyncio.gather(
                batcher.submit(chunk_a), batcher.submit(chunk_b)
            )

        result_a, result_b = run(scenario())
        np.testing.assert_array_equal(result_a, [[10], [20], [30]])
        np.testing.assert_array_equal(result_b, [[40], [50]])
        assert len(runner.calls) == 1
        assert runner.calls[0].shape == (5, 1)


class TestDeterministicFlush:
    def test_lone_request_resolves_on_timer(self):
        """A single request with no follow-up traffic must not hang."""
        runner = RecordingRunner()
        batcher = MicroBatcher(runner, max_batch=64, max_wait_s=0.005)

        async def scenario():
            return await asyncio.wait_for(
                batcher.submit(np.array([[7]])), timeout=5.0
            )

        np.testing.assert_array_equal(run(scenario()), [[70]])

    def test_shutdown_flushes_pending_window(self):
        """Regression: traffic stopping mid-window must not strand waiters.

        The window is far from full and the timer is effectively
        infinite — only the shutdown flush can resolve the request.
        """
        runner = RecordingRunner()
        batcher = MicroBatcher(runner, max_batch=64, max_wait_s=60.0)

        async def scenario():
            task = asyncio.ensure_future(batcher.submit(np.array([[3]])))
            await asyncio.sleep(0)  # let the submit enqueue
            assert not task.done()
            await batcher.aclose()
            return await asyncio.wait_for(task, timeout=1.0)

        np.testing.assert_array_equal(run(scenario()), [[30]])
        assert runner.calls  # the close actually ran the batch

    def test_submit_after_close_is_refused(self):
        batcher = MicroBatcher(RecordingRunner(), max_wait_s=0.001)

        async def scenario():
            await batcher.aclose()
            with pytest.raises(BatcherClosed):
                await batcher.submit(np.array([[1]]))

        run(scenario())

    def test_close_is_idempotent(self):
        batcher = MicroBatcher(RecordingRunner(), max_wait_s=0.001)

        async def scenario():
            await batcher.aclose()
            await batcher.aclose()

        run(scenario())


class TestFailurePropagation:
    def test_batch_failure_rejects_all_waiters_then_recovers(self):
        runner = RecordingRunner(fail=True)
        batcher = MicroBatcher(runner, max_batch=64, max_wait_s=0.005)

        async def scenario():
            results = await asyncio.gather(
                batcher.submit(np.array([[1]])),
                batcher.submit(np.array([[2]])),
                return_exceptions=True,
            )
            assert all(isinstance(r, RuntimeError) for r in results)
            # The batcher survives a failing batch: later traffic works.
            runner.fail = False
            ok = await asyncio.wait_for(
                batcher.submit(np.array([[5]])), timeout=5.0
            )
            np.testing.assert_array_equal(ok, [[50]])

        run(scenario())


class TestBitParity:
    """Batched results must be bit-identical to per-request execution."""

    def test_encode_batched_equals_sequential(self, tenant_dir, tiny_dataset):
        rows = tiny_dataset.test_x[:8]

        # Replica A serves the rows through one coalesced window.
        batched_encoder = load_tenant(tenant_dir).encoder
        batcher = MicroBatcher(
            batched_encoder.encode_batch_packed, max_batch=8, max_wait_s=0.05
        )

        async def scenario():
            return await asyncio.gather(
                *(batcher.submit(row[None, :]) for row in rows)
            )

        batched = np.concatenate(run(scenario()))
        assert batcher.stats.batches == 1  # genuinely one kernel call

        # Replica B runs the identical sequence one request at a time.
        sequential_encoder = load_tenant(tenant_dir).encoder
        sequential = np.concatenate(
            [sequential_encoder.encode_batch_packed(row[None, :]) for row in rows]
        )

        np.testing.assert_array_equal(batched, sequential)

    def test_classify_batched_equals_sequential(self, tenant_dir, tiny_dataset):
        rows = tiny_dataset.test_x[:10]

        batched_model = load_tenant(tenant_dir).classifier
        batcher = MicroBatcher(
            batched_model.predict, max_batch=16, max_wait_s=0.05
        )

        async def scenario():
            return await asyncio.gather(
                *(batcher.submit(row[None, :]) for row in rows)
            )

        batched = np.concatenate(run(scenario()))

        sequential_model = load_tenant(tenant_dir).classifier
        sequential = np.concatenate(
            [sequential_model.predict(row[None, :]) for row in rows]
        )

        np.testing.assert_array_equal(batched, sequential)


class TestConfig:
    def test_bad_parameters_rejected(self):
        # The taxonomy type (not a bare ValueError) so the adapter's
        # status mapping covers construction errors too (RL004).
        with pytest.raises(ConfigurationError):
            MicroBatcher(RecordingRunner(), max_batch=0)
        with pytest.raises(ConfigurationError):
            MicroBatcher(RecordingRunner(), max_wait_s=-1.0)
