"""The stdlib HTTP/1.1 bridge, exercised over a real loopback socket."""

from __future__ import annotations

import asyncio
import http.client
import json
import threading

import pytest

from repro.serving.app import create_app
from repro.serving.http import serve


@pytest.fixture
def server(registry):
    """Run the bridge on an ephemeral port; yields (host, port)."""
    app = create_app(registry, max_wait_s=0.001)
    bound: dict = {}
    ready = threading.Event()
    control: dict = {}

    def run() -> None:
        async def main() -> None:
            control["loop"] = asyncio.get_running_loop()
            control["stop"] = asyncio.Event()
            await serve(
                app,
                "127.0.0.1",
                0,
                ready=lambda host, port: (
                    bound.update(host=host, port=port),
                    ready.set(),
                ),
                shutdown_trigger=control["stop"],
            )

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(timeout=10), "server did not come up"
    yield bound["host"], bound["port"]
    control["loop"].call_soon_threadsafe(control["stop"].set)
    thread.join(timeout=10)
    assert not thread.is_alive()


def request(host, port, method, path, payload=None):
    connection = http.client.HTTPConnection(host, port, timeout=10)
    try:
        body = None if payload is None else json.dumps(payload)
        headers = {} if body is None else {"Content-Type": "application/json"}
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


class TestBridge:
    def test_healthz_over_socket(self, server):
        status, body = request(*server, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"

    def test_round_trip_over_socket(self, server, tiny_dataset):
        sample = tiny_dataset.test_x[0].tolist()
        status, body = request(
            *server, "POST", "/v1/alpha/classify", {"sample": sample}
        )
        assert status == 200
        assert len(body["labels"]) == 1

    def test_error_statuses_over_socket(self, server):
        status, _ = request(*server, "GET", "/nope")
        assert status == 404
        status, body = request(
            *server, "POST", "/v1/alpha/classify", {"sample": [1, 2]}
        )
        assert status == 422
        assert body["error"] == "dimension_mismatch"

    def test_keep_alive_reuses_connection(self, server, tiny_dataset):
        host, port = server
        sample = tiny_dataset.test_x[0].tolist()
        connection = http.client.HTTPConnection(host, port, timeout=10)
        try:
            for _ in range(3):
                connection.request(
                    "POST",
                    "/v1/alpha/classify",
                    body=json.dumps({"sample": sample}),
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                assert response.status == 200
                response.read()
        finally:
            connection.close()
