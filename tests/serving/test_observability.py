"""Observability through the serving stack: IDs, /metrics, /statusz.

Everything here drives the real ASGI app through the in-process test
client, so the request-ID middleware, the instrumented service core,
and the exposition endpoints are exercised exactly as a deployment
would see them.
"""

from __future__ import annotations

import pytest

from repro.obs.trace import SpanRecorder
from repro.serving.app import create_app
from repro.serving.testclient import TestClient

PROBE = [1] * 40


@pytest.fixture
def client(registry):
    with TestClient(create_app(registry, max_wait_s=0.001)) as client:
        yield client


class TestRequestIdMiddleware:
    def test_every_response_carries_a_request_id(self, client):
        response = client.get("/healthz")
        assert response.headers["x-request-id"].startswith("req-")

    def test_ids_are_unique_per_request(self, client):
        first = client.get("/healthz").headers["x-request-id"]
        second = client.get("/healthz").headers["x-request-id"]
        assert first != second

    def test_client_supplied_id_is_echoed(self, client):
        response = client.get(
            "/healthz", headers={"x-request-id": "caller-7.test"}
        )
        assert response.headers["x-request-id"] == "caller-7.test"

    def test_hostile_id_is_replaced(self, client):
        response = client.get(
            "/healthz", headers={"x-request-id": "bad id\twith ctl"}
        )
        assert response.headers["x-request-id"].startswith("req-")

    def test_error_responses_carry_a_request_id_too(self, client):
        response = client.get("/nope")
        assert response.status == 404
        assert response.headers["x-request-id"].startswith("req-")


class TestMetricsEndpoint:
    def test_content_type_is_prometheus_text(self, client):
        response = client.get("/metrics")
        assert response.status == 200
        assert (
            response.headers["content-type"]
            == "text/plain; version=0.0.4; charset=utf-8"
        )

    def test_per_tenant_request_latency_and_occupancy(self, client):
        client.post("/v1/alpha/classify", json={"samples": [PROBE, PROBE]})
        client.post("/v1/alpha/encode", json={"sample": PROBE})
        body = client.get("/metrics").content.decode()
        assert "# TYPE repro_requests_total counter" in body
        assert (
            'repro_requests_total{tenant="alpha",op="classify",outcome="ok"} 1'
            in body
        )
        assert (
            'repro_requests_total{tenant="alpha",op="encode",outcome="ok"} 1'
            in body
        )
        assert "# TYPE repro_request_latency_seconds histogram" in body
        assert (
            'repro_request_latency_seconds_count{tenant="alpha",op="classify"} 1'
            in body
        )
        # Two rows coalesced into one classify flush: occupancy sees 2.
        assert "# TYPE repro_batch_occupancy_rows histogram" in body
        assert (
            'repro_batch_occupancy_rows_sum{tenant="alpha",op="classify"} 2'
            in body
        )
        assert (
            'repro_batch_occupancy_rows_count{tenant="alpha",op="classify"} 1'
            in body
        )

    def test_key_gate_denials_per_tenant_and_reason(self, client, registry):
        tenant = registry.get("alpha")
        tenant.store.revoke(tenant.device_id)
        response = client.post("/v1/alpha/classify", json={"sample": PROBE})
        assert response.status == 403
        body = client.get("/metrics").content.decode()
        assert (
            'repro_key_gate_denials_total{tenant="alpha",reason="revoked"} 1'
            in body
        )
        assert (
            'repro_requests_total{tenant="alpha",op="classify",'
            'outcome="key_access_denied"} 1' in body
        )

    def test_unknown_tenant_does_not_mint_labels(self, client):
        client.post("/v1/attacker-chosen-name/classify", json={"sample": PROBE})
        body = client.get("/metrics").content.decode()
        assert "attacker-chosen-name" not in body
        assert (
            'repro_requests_total{tenant="_unknown",op="classify",'
            'outcome="unknown_tenant"} 1' in body
        )

    def test_kernel_counters_ride_the_same_registry(self, client):
        client.post("/v1/alpha/encode", json={"samples": [PROBE, PROBE]})
        body = client.get("/metrics").content.decode()
        assert "# TYPE repro_encode_rows_total counter" in body
        assert 'scope="alpha"' in body

    def test_uninstrumented_app_serves_empty_metrics(self, registry):
        app = create_app(registry, max_wait_s=0.001, instrument=False)
        with TestClient(app) as client:
            client.post("/v1/alpha/classify", json={"sample": PROBE})
            response = client.get("/metrics")
            assert response.status == 200
            assert response.content == b""


class TestStatusz:
    def test_shape_and_tenant_lifecycle(self, client):
        body = client.get("/statusz").json()
        assert body["status"] == "ok"
        assert body["uptime_s"] >= 0
        alpha = body["tenants"]["alpha"]
        assert alpha["revoked"] is False
        assert alpha["generation"] == alpha["provisioned_generation"] == 0

    def test_batcher_stats_are_exposed(self, client):
        """Regression: BatchStats used to accumulate with no reader."""
        client.post("/v1/alpha/classify", json={"samples": [PROBE, PROBE]})
        stats = client.get("/statusz").json()["batchers"]["alpha"]["classify"]
        assert stats["requests"] == 1
        assert stats["rows"] == 2
        assert stats["batches"] == 1
        assert stats["largest_batch"] == 2
        assert stats["mean_rows_per_batch"] == 2.0

    def test_reset_on_read(self, client):
        client.post("/v1/alpha/classify", json={"sample": PROBE})
        first = client.get("/statusz?reset=1").json()
        assert first["batchers"]["alpha"]["classify"]["requests"] == 1
        second = client.get("/statusz").json()
        assert second["batchers"]["alpha"]["classify"]["requests"] == 0

    def test_plain_read_does_not_reset(self, client):
        client.post("/v1/alpha/classify", json={"sample": PROBE})
        client.get("/statusz")
        again = client.get("/statusz").json()
        assert again["batchers"]["alpha"]["classify"]["requests"] == 1

    def test_metrics_snapshot_included(self, client):
        client.post("/v1/alpha/classify", json={"sample": PROBE})
        metrics = client.get("/statusz").json()["metrics"]
        samples = metrics["repro_requests_total"]["samples"]
        assert any(
            s["labels"]
            == {"tenant": "alpha", "op": "classify", "outcome": "ok"}
            and s["value"] == 1
            for s in samples
        )


class TestTracePropagation:
    def test_request_id_flows_request_to_span_to_header(self, client):
        """The batcher sits between request and kernel; the span must
        still carry the request's ID (contextvars, not call stacks)."""
        recorder = SpanRecorder()
        client.app.service.spans = recorder
        response = client.post(
            "/v1/alpha/classify",
            json={"sample": PROBE},
            headers={"x-request-id": "trace-me-1"},
        )
        assert response.status == 200
        assert response.headers["x-request-id"] == "trace-me-1"
        (span_record,) = recorder.drain()
        assert span_record["name"] == "classify/alpha"
        assert span_record["request_id"] == "trace-me-1"
        assert span_record["elapsed_s"] > 0

    def test_spans_record_per_request_under_coalesced_batches(self, client):
        recorder = SpanRecorder()
        client.app.service.spans = recorder
        client.post(
            "/v1/alpha/encode",
            json={"sample": PROBE},
            headers={"x-request-id": "enc-a"},
        )
        client.post(
            "/v1/alpha/encode",
            json={"sample": PROBE},
            headers={"x-request-id": "enc-b"},
        )
        ids = sorted(s["request_id"] for s in recorder.drain())
        assert ids == ["enc-a", "enc-b"]
