"""Tenancy: provision → load round trips and the key lifecycle gate."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hdlock.lock import rotate_system
from repro.model.train import train_model
from repro.serving.errors import KeyAccessError, UnknownTenantError
from repro.serving.registry import (
    CLASS_STATE_FILE,
    MODEL_FILE,
    ModelRegistry,
    load_tenant,
    provision_tenant,
)


class TestProvision:
    def test_artifacts_on_disk(self, tenant_dir):
        assert (tenant_dir / "manifest.json").exists()
        assert (tenant_dir / "base_pool.npy").exists()
        assert (tenant_dir / MODEL_FILE).exists()
        assert (tenant_dir / CLASS_STATE_FILE).exists()
        meta = json.loads((tenant_dir / MODEL_FILE).read_text())
        assert meta["name"] == "alpha"
        assert meta["device_id"] == 0
        assert meta["binary"] is True
        assert meta["generation"] == 0
        assert len(meta["key_digest"]) == 64

    def test_keystore_is_private(self, tenant_dir):
        mode = os.stat(tenant_dir / "keystore").st_mode & 0o777
        assert mode == 0o700

    def test_classifier_encoder_mismatch_refused(
        self, tmp_path, locked_system, tiny_dataset, small_encoder
    ):
        training = train_model(
            small_encoder,
            tiny_dataset.train_x,
            tiny_dataset.train_y,
            n_classes=tiny_dataset.n_classes,
            rng=0,
        )
        with pytest.raises(ConfigurationError, match="different encoder"):
            provision_tenant(
                tmp_path / "bad", "bad", locked_system, training.model
            )


class TestLoadRoundTrip:
    def test_replicas_are_bit_identical(self, tenant_dir, tiny_dataset):
        first = load_tenant(tenant_dir)
        second = load_tenant(tenant_dir)
        rows = tiny_dataset.test_x
        np.testing.assert_array_equal(
            first.encoder.encode_batch_packed(rows),
            second.encoder.encode_batch_packed(rows),
        )
        np.testing.assert_array_equal(
            first.classifier.predict(rows), second.classifier.predict(rows)
        )

    def test_replica_matches_original_class_memory(self, provisioned):
        replica = load_tenant(provisioned.directory)
        # The trained state round-trips exactly: accumulators and the
        # binarized snapshot (tie-breaks included) are the originals.
        np.testing.assert_array_equal(
            replica.classifier.class_accumulators,
            provisioned.original.class_accumulators,
        )
        np.testing.assert_array_equal(
            replica.classifier.class_matrix,
            provisioned.original.class_matrix,
        )

    def test_name_override(self, tenant_dir):
        tenant = load_tenant(tenant_dir, name="renamed")
        assert tenant.name == "renamed"

    def test_malformed_metadata(self, tenant_dir):
        (tenant_dir / MODEL_FILE).write_text("{not json")
        with pytest.raises(ConfigurationError, match="malformed"):
            load_tenant(tenant_dir)

    def test_missing_metadata(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no serving metadata"):
            load_tenant(tmp_path / "nowhere")

    def test_future_version_refused(self, tenant_dir):
        meta = json.loads((tenant_dir / MODEL_FILE).read_text())
        meta["version"] = 99
        (tenant_dir / MODEL_FILE).write_text(json.dumps(meta))
        with pytest.raises(ConfigurationError, match="version 99"):
            load_tenant(tenant_dir)


class TestLifecycleGate:
    def test_fresh_tenant_passes(self, tenant_dir):
        load_tenant(tenant_dir).check_access()

    def test_revoked_device_is_denied_not_crashed(self, tenant_dir):
        tenant = load_tenant(tenant_dir)
        tenant.store.revoke(tenant.device_id)
        with pytest.raises(KeyAccessError) as excinfo:
            tenant.check_access()
        payload = excinfo.value.to_payload()
        assert payload["reason"] == "revoked"
        assert payload["device_id"] == tenant.device_id
        # A revoked tenant still *loads* (403 is a request-time answer).
        reloaded = load_tenant(tenant_dir)
        with pytest.raises(KeyAccessError):
            reloaded.check_access()

    def test_rotated_device_is_denied_with_generations(self, tenant_dir):
        tenant = load_tenant(tenant_dir)
        tenant.store.rotate(tenant.device_id, rng=99)
        with pytest.raises(KeyAccessError) as excinfo:
            tenant.check_access()
        payload = excinfo.value.to_payload()
        assert payload["reason"] == "rotated"
        assert payload["generation"] == 1
        assert payload["provisioned_generation"] == 0

    def test_gate_fast_path_still_sees_rotation(self, tenant_dir):
        # The digest check is cached per store generation; a rotation
        # after a passing check must invalidate that cache, not be
        # masked by it.
        tenant = load_tenant(tenant_dir)
        tenant.check_access()
        tenant.check_access()  # second pass rides the cached digest
        tenant.store.rotate(tenant.device_id, rng=3)
        with pytest.raises(KeyAccessError, match="rotated"):
            tenant.check_access()

    def test_reprovision_after_rotation_restores_access(
        self, provisioned, locked_system, tiny_dataset
    ):
        stale = load_tenant(provisioned.directory)
        stale.store.rotate(stale.device_id, rng=99)
        # Even a *reload* stays denied: the class memory on disk was
        # trained under the retired key, so serving it under the rotated
        # one would silently infer in the wrong feature space.
        with pytest.raises(KeyAccessError):
            load_tenant(provisioned.directory).check_access()
        # The documented recovery: re-lock, retrain, re-provision.
        rotated = rotate_system(locked_system, rng=11)
        training = train_model(
            rotated.encoder,
            tiny_dataset.train_x,
            tiny_dataset.train_y,
            n_classes=tiny_dataset.n_classes,
            retrain_epochs=1,
            rng=12,
        )
        provision_tenant(provisioned.directory, "alpha", rotated, training.model)
        fresh = load_tenant(provisioned.directory)
        fresh.check_access()
        assert fresh.device_id == 1  # the rotated key's store slot
        assert fresh.classifier.predict(tiny_dataset.test_x[:2]).shape == (2,)


class TestRegistry:
    def test_get_unknown_tenant(self, registry):
        with pytest.raises(UnknownTenantError) as excinfo:
            registry.get("ghost")
        assert excinfo.value.to_payload()["tenants"] == ["alpha"]

    def test_duplicate_name_refused(self, registry, tenant_dir):
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.load(tenant_dir)

    def test_load_registers(self, tenant_dir):
        registry = ModelRegistry()
        tenant = registry.load(tenant_dir, name="beta")
        assert registry.names() == ["beta"]
        assert registry.get("beta") is tenant
        assert len(registry) == 1

    def test_descriptor_schema(self, registry):
        descriptor = registry.get("alpha").descriptor({"encode": {}})
        payload = descriptor.to_dict()
        assert payload["name"] == "alpha"
        assert payload["dim"] == 1024
        assert payload["n_features"] == 40
        assert payload["revoked"] is False
        assert payload["batch_stats"] == {"encode": {}}
