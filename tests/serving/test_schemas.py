"""Request parsing and packed-hex transport contracts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving.errors import RequestValidationError
from repro.serving.schemas import (
    MAX_ROWS_PER_REQUEST,
    hex_to_packed_row,
    packed_rows_to_hex,
    parse_samples,
)


class TestParseSamples:
    def test_single_sample(self):
        rows = parse_samples({"sample": [1, 2, 3]})
        assert rows.shape == (1, 3)
        assert rows.dtype == np.int64

    def test_batch(self):
        rows = parse_samples({"samples": [[1, 2], [3, 4], [5, 6]]})
        assert rows.shape == (3, 2)
        np.testing.assert_array_equal(rows, [[1, 2], [3, 4], [5, 6]])

    @pytest.mark.parametrize(
        "payload",
        [
            "not a dict",
            {},
            {"sample": [1], "samples": [[1]]},
            {"samples": []},
            {"samples": "nope"},
            {"samples": [[]]},
            {"samples": [[1, 2], [3]]},
            {"sample": [1, 2.5]},
            {"sample": [1, "2"]},
            {"sample": [True, False]},
            {"samples": [[1], "x"]},
        ],
    )
    def test_rejects(self, payload):
        with pytest.raises(RequestValidationError):
            parse_samples(payload)

    def test_row_cap(self):
        over = [[1]] * (MAX_ROWS_PER_REQUEST + 1)
        with pytest.raises(RequestValidationError, match="split the batch"):
            parse_samples({"samples": over})


class TestPackedHex:
    def test_round_trip(self, rng):
        packed = rng.integers(0, 2**63, size=(4, 3), dtype=np.uint64)
        texts = packed_rows_to_hex(packed)
        assert len(texts) == 4
        for row, text in zip(packed, texts, strict=True):
            np.testing.assert_array_equal(hex_to_packed_row(text), row)

    def test_hex_is_big_endian_words(self):
        packed = np.array([[0x0102030405060708]], dtype=np.uint64)
        assert packed_rows_to_hex(packed) == ("0102030405060708",)

    def test_bad_hex_width(self):
        with pytest.raises(RequestValidationError):
            hex_to_packed_row("abcd")
