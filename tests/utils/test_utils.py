"""Tests for rng/timer/table utilities."""

import time

import numpy as np
import pytest

from repro.utils.rng import DEFAULT_SEED, derive_seed, resolve_rng, spawn_rngs
from repro.utils.tables import format_quantity, format_seconds, render_table
from repro.utils.timer import Timer, time_call


class TestResolveRng:
    def test_from_int(self):
        a = resolve_rng(42).integers(0, 1000, 10)
        b = resolve_rng(42).integers(0, 1000, 10)
        np.testing.assert_array_equal(a, b)

    def test_passthrough_generator(self):
        gen = np.random.default_rng(1)
        assert resolve_rng(gen) is gen

    def test_none_gives_fresh(self):
        assert isinstance(resolve_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        children = spawn_rngs(0, 4)
        assert len(children) == 4

    def test_children_independent_streams(self):
        a, b = spawn_rngs(7, 2)
        assert not np.array_equal(a.integers(0, 100, 20), b.integers(0, 100, 20))

    def test_deterministic(self):
        a1, _ = spawn_rngs(9, 2)
        a2, _ = spawn_rngs(9, 2)
        np.testing.assert_array_equal(
            a1.integers(0, 100, 20), a2.integers(0, 100, 20)
        )

    def test_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed("a", 1, True) == derive_seed("a", 1, True)

    def test_sensitive_to_parts(self):
        assert derive_seed("a", 1) != derive_seed("a", 2)
        assert derive_seed("a") != derive_seed("b")

    def test_fits_in_63_bits(self):
        assert 0 <= derive_seed("x", DEFAULT_SEED) < 2**63


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_time_call_returns_result(self):
        result, elapsed = time_call(lambda x: x * 2, 21)
        assert result == 42
        assert elapsed >= 0.0


class TestFormatQuantity:
    def test_zero(self):
        assert format_quantity(0) == "0"

    def test_small_integer(self):
        assert format_quantity(784) == "784"

    def test_large_scientific(self):
        assert format_quantity(4.81e16) == "4.81e+16"

    def test_non_integer_small(self):
        assert "e" in format_quantity(0.5) or "." in format_quantity(0.5)


class TestFormatSeconds:
    def test_seconds(self):
        assert format_seconds(4057.59) == "4057.59s"

    def test_milliseconds(self):
        assert format_seconds(0.0042) == "4.200ms"


class TestRenderTable:
    def test_contains_headers_and_cells(self):
        out = render_table(["a", "bb"], [(1, 2), (3, 4)])
        assert "a" in out and "bb" in out
        assert "3" in out and "4" in out

    def test_title(self):
        out = render_table(["x"], [(1,)], title="My Table")
        assert out.startswith("My Table")

    def test_alignment_consistent(self):
        out = render_table(["col"], [("short",), ("a much longer cell",)])
        lines = out.splitlines()
        assert len({len(line) for line in lines if "|" in line or "-" in line}) == 1

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [(1,)])
